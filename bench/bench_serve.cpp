// Serving bench: QPS and tail latency of the KernelServer under N
// concurrent client threads (pool slots), with and without request
// batching.
//
//   bench_serve [--small] [--check] [--threads=<n>] [--clients=<n>]
//               [--queries=<m>] [--report=<f>] [--metrics=<f>]
//               [--exec-json=<f>]
//
// Two timed phases over the same precomputed query set:
//   unbatched  batching off — every request leases a runner and runs the
//              linked engine (the per-request serial path, differentially
//              the ground truth);
//   batched    batching on — concurrent requests against the cached plan
//              coalesce into SpMM-style multi-vector sweeps. Clients
//              issue requests in synchronized waves (std::barrier) so
//              coalescing windows actually form on small hosts.
//
// --check enforces the serving contract: every response from BOTH phases
// bitwise-identical to the per-request serial reference (and the
// reference itself bitwise-identical to blas::spmm over the same
// right-hand sides), plus a warm cache (hit rate > 0 in steady state).
//
// --exec-json=<f> merges a top-level "serve" object into an existing
// bernoulli.bench.exec.v1 snapshot (committed BENCH_exec.json), whose
// numeric members report_metrics() derives as exec.serve.<key> — the
// same names the --report run.v1 document emits, so serve runs diff and
// regress through the standard `bernoulli_report` flow. Only the
// speedup-named metric is meant for the CI regress gate (qps/p50/p99 are
// direction-ambiguous under the name-based higher-is-better rule).
#include <algorithm>
#include <barrier>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include "analysis/report.hpp"
#include "common.hpp"
#include "blas/spmm.hpp"
#include "formats/formats.hpp"
#include "server/kernel_server.hpp"
#include "support/json_reader.hpp"
#include "support/json_writer.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"

namespace bernoulli {
namespace {

long long now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

formats::Csr random_csr(index_t rows, index_t cols, index_t nnz,
                        std::uint64_t seed) {
  SplitMix64 rng(seed);
  formats::TripletBuilder b(rows, cols);
  for (index_t k = 0; k < nnz; ++k)
    b.add(rng.next_index(rows), rng.next_index(cols),
          rng.next_double(-1.0, 1.0));
  return formats::Csr::from_coo(std::move(b).build());
}

// The per-request serial reference: the engine's exact enumeration order
// and multiply chain, so --check comparisons are bitwise.
Vector reference_spmv(const formats::Csr& A, const Vector& x) {
  Vector y(static_cast<std::size_t>(A.rows()), 0.0);
  const auto rowptr = A.rowptr();
  const auto colind = A.colind();
  const auto vals = A.vals();
  for (index_t i = 0; i < A.rows(); ++i) {
    for (index_t e = rowptr[static_cast<std::size_t>(i)];
         e < rowptr[static_cast<std::size_t>(i) + 1]; ++e) {
      value_t prod = 1.0;
      prod *= vals[static_cast<std::size_t>(e)];
      prod *= x[static_cast<std::size_t>(
          colind[static_cast<std::size_t>(e)])];
      y[static_cast<std::size_t>(i)] += prod;
    }
  }
  return y;
}

struct PhaseResult {
  double wall_s = 0;
  std::vector<long long> latencies_ns;  // one per request
  server::ServerStats stats;
  long long mismatches = 0;  // responses that diverged from the reference
};

// One serving phase: `clients` pool-slot threads each issue `queries`
// requests in synchronized waves against a fresh server. Every response
// is compared bitwise against its precomputed reference.
PhaseResult run_phase(const formats::Csr& A, const std::vector<Vector>& xs,
                      const std::vector<Vector>& refs, int clients,
                      int queries, bool batching, int sweep_threads) {
  server::ServerOptions sopts;
  sopts.batching = batching;
  sopts.max_batch = clients;
  sopts.sweep_threads = sweep_threads;
  server::KernelServer srv(sopts);
  const int h = srv.add_csr("A", A);

  // Untimed warmup: pays the cache miss (compile + link + warmup run) so
  // the timed loop measures steady-state serving.
  {
    Vector y(static_cast<std::size_t>(A.rows()));
    srv.spmv(h, ConstVectorView(xs[0]), VectorView(y));
  }

  PhaseResult out;
  out.latencies_ns.assign(
      static_cast<std::size_t>(clients) * static_cast<std::size_t>(queries),
      0);
  std::atomic<long long> mismatches{0};
  std::barrier wave(clients);
  support::ThreadPool& pool = support::shared_pool(clients);
  const long long t0 = now_ns();
  pool.run_slots(clients, [&](int slot) {
    const std::size_t si = static_cast<std::size_t>(slot);
    Vector y(static_cast<std::size_t>(A.rows()));
    for (int q = 0; q < queries; ++q) {
      const std::size_t xi = (si + static_cast<std::size_t>(q)) % xs.size();
      wave.arrive_and_wait();
      const long long r0 = now_ns();
      srv.spmv(h, ConstVectorView(xs[xi]), VectorView(y));
      out.latencies_ns[si * static_cast<std::size_t>(queries) +
                       static_cast<std::size_t>(q)] = now_ns() - r0;
      if (y != refs[xi]) mismatches.fetch_add(1);
    }
  });
  out.wall_s = static_cast<double>(now_ns() - t0) * 1e-9;
  out.stats = srv.stats();
  out.mismatches = mismatches.load();
  return out;
}

double quantile_us(std::vector<long long> ns, double q) {
  if (ns.empty()) return 0;
  std::sort(ns.begin(), ns.end());
  const std::size_t idx = std::min(
      ns.size() - 1,
      static_cast<std::size_t>(q * static_cast<double>(ns.size())));
  return static_cast<double>(ns[idx]) * 1e-3;
}

void dump_json(const support::JsonValue& v, support::JsonWriter& w) {
  using T = support::JsonValue::Type;
  switch (v.type) {
    case T::kNull:
      // JsonWriter spells non-finite numbers as null; reuse that path.
      w.value(std::numeric_limits<double>::quiet_NaN());
      break;
    case T::kBool:
      w.value(v.boolean);
      break;
    case T::kNumber:
      w.value(v.number);
      break;
    case T::kString:
      w.value(v.str);
      break;
    case T::kArray:
      w.begin_array();
      for (const support::JsonValue& item : v.items) dump_json(item, w);
      w.end_array();
      break;
    case T::kObject:
      w.begin_object();
      for (const auto& [key, member] : v.members) {
        w.key(key);
        dump_json(member, w);
      }
      w.end_object();
      break;
  }
}

// Replaces (or appends) the top-level "serve" object of an exec.v1
// snapshot in place, preserving every other member.
void merge_serve_json(const std::string& path,
                      const std::map<std::string, double>& serve) {
  support::JsonValue doc;
  {
    std::ifstream in(path);
    if (in) {
      std::stringstream ss;
      ss << in.rdbuf();
      doc = support::json_parse(ss.str());
      BERNOULLI_CHECK_MSG(doc.is_object(),
                          path << " is not a JSON object snapshot");
    } else {
      doc.type = support::JsonValue::Type::kObject;
      support::JsonValue schema;
      schema.type = support::JsonValue::Type::kString;
      schema.str = "bernoulli.bench.exec.v1";
      doc.members.emplace_back("schema", std::move(schema));
      support::JsonValue cases;
      cases.type = support::JsonValue::Type::kArray;
      doc.members.emplace_back("cases", std::move(cases));
    }
  }
  support::JsonValue serve_v;
  serve_v.type = support::JsonValue::Type::kObject;
  for (const auto& [key, val] : serve) {
    support::JsonValue num;
    num.type = support::JsonValue::Type::kNumber;
    num.number = val;
    serve_v.members.emplace_back(key, std::move(num));
  }
  bool replaced = false;
  for (auto& [key, member] : doc.members)
    if (key == "serve") {
      member = std::move(serve_v);
      replaced = true;
      break;
    }
  if (!replaced) doc.members.emplace_back("serve", std::move(serve_v));

  support::JsonWriter w(2);
  dump_json(doc, w);
  std::ofstream out(path);
  out << w.str() << "\n";
  BERNOULLI_CHECK_MSG(out.good(), "failed writing " << path);
  std::cerr << "merged serve section into " << path << "\n";
}

}  // namespace
}  // namespace bernoulli

int main(int argc, char** argv) {
  using namespace bernoulli;
  bench::Options opts = bench::Options::parse(argc, argv);
  std::string exec_json;
  int clients = opts.small ? 4 : 8;
  int queries = opts.small ? 40 : 120;
  for (const std::string& arg : opts.rest) {
    if (arg.rfind("--exec-json=", 0) == 0) {
      exec_json = arg.substr(12);
    } else if (arg.rfind("--clients=", 0) == 0) {
      clients = std::atoi(arg.c_str() + 10);
    } else if (arg.rfind("--queries=", 0) == 0) {
      queries = std::atoi(arg.c_str() + 10);
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return 2;
    }
  }
  if (clients < 1 || queries < 1) {
    std::cerr << "error: --clients and --queries must be >= 1\n";
    return 2;
  }
  const int sweep_threads = std::max(opts.threads, 1);

  const index_t rows = opts.small ? 600 : 4000;
  const index_t nnz = rows * 12;
  const formats::Csr A = random_csr(rows, rows, nnz, 97);

  // Distinct query vectors (one per client, rotated per request) and
  // their per-request serial references.
  std::vector<Vector> xs, refs;
  for (int t = 0; t < clients; ++t) {
    SplitMix64 rng(5000 + static_cast<std::uint64_t>(t));
    Vector x(static_cast<std::size_t>(rows));
    for (value_t& v : x) v = rng.next_double(-1.0, 1.0);
    refs.push_back(reference_spmv(A, x));
    xs.push_back(std::move(x));
  }

  std::cout << "=== KernelServer: " << clients << " clients x " << queries
            << " queries, " << rows << "x" << rows << " CSR, " << A.nnz()
            << " nnz ===\n\n";

  const PhaseResult unbatched =
      run_phase(A, xs, refs, clients, queries, /*batching=*/false,
                sweep_threads);
  const PhaseResult batched =
      run_phase(A, xs, refs, clients, queries, /*batching=*/true,
                sweep_threads);

  const double total_requests =
      static_cast<double>(clients) * static_cast<double>(queries);
  const double qps = total_requests / batched.wall_s;
  const double qps_unbatched = total_requests / unbatched.wall_s;
  const double p50 = quantile_us(batched.latencies_ns, 0.50);
  const double p99 = quantile_us(batched.latencies_ns, 0.99);
  const double speedup = unbatched.wall_s / batched.wall_s;
  const double hit_rate =
      batched.stats.requests == 0
          ? 0.0
          : static_cast<double>(batched.stats.cache_hits) /
                static_cast<double>(batched.stats.cache_hits +
                                    batched.stats.cache_misses);

  auto print_phase = [&](const char* name, const PhaseResult& r) {
    std::cout << name << ": " << total_requests / r.wall_s << " qps, p50 "
              << quantile_us(r.latencies_ns, 0.50) << " us, p99 "
              << quantile_us(r.latencies_ns, 0.99) << " us, "
              << r.stats.batches << " sweeps covering "
              << r.stats.batched_requests << " requests, hits "
              << r.stats.cache_hits << " misses " << r.stats.cache_misses
              << "\n";
  };
  print_phase("unbatched", unbatched);
  print_phase("batched  ", batched);
  std::cout << "speedup batched/unbatched: " << speedup << "\n";

  const std::map<std::string, double> serve = {
      {"qps", qps},
      {"qps_unbatched", qps_unbatched},
      {"p50_us", p50},
      {"p99_us", p99},
      {"speedup_batched_over_unbatched", speedup},
      {"cache_hit_rate", hit_rate},
      {"batched_requests", static_cast<double>(batched.stats.batched_requests)},
  };

  if (!opts.obs.report_path.empty()) {
    analysis::RunReport report("bench_serve");
    report.config("clients", static_cast<long long>(clients));
    report.config("queries", static_cast<long long>(queries));
    report.config("small", opts.small ? "true" : "false");
    report.config("sweep_threads", static_cast<long long>(sweep_threads));
    for (const auto& [key, val] : serve)
      report.metric("exec.serve." + key, val);
    report.write(opts.obs.report_path);
  }
  if (!exec_json.empty()) merge_serve_json(exec_json, serve);
  opts.finish();

  if (opts.check) {
    bool ok = true;
    if (unbatched.mismatches != 0 || batched.mismatches != 0) {
      std::cerr << "CHECK FAILED: " << unbatched.mismatches << " unbatched / "
                << batched.mismatches
                << " batched responses diverged bitwise from the serial "
                   "per-request reference\n";
      ok = false;
    }
    if (batched.stats.cache_hits <= 0) {
      std::cerr << "CHECK FAILED: steady-state serving never hit the plan "
                   "cache\n";
      ok = false;
    }
    // Reference triangulation: the engine-order reference must itself be
    // bitwise-identical to blas::spmm over the same right-hand sides —
    // the sweep, the engine and spmm share one multiply chain.
    formats::Dense B(rows, clients), C(rows, clients);
    for (int r = 0; r < clients; ++r)
      for (index_t j = 0; j < rows; ++j)
        B.at(j, r) =
            xs[static_cast<std::size_t>(r)][static_cast<std::size_t>(j)];
    blas::spmm(A, B, C);
    for (int r = 0; r < clients && ok; ++r)
      for (index_t i = 0; i < rows; ++i)
        if (C.at(i, r) !=
            refs[static_cast<std::size_t>(r)][static_cast<std::size_t>(i)]) {
          std::cerr << "CHECK FAILED: reference diverges from blas::spmm at "
                       "(" << i << ", " << r << ")\n";
          ok = false;
          break;
        }
    if (!ok) return 1;
    std::cout << "\nCHECK OK: " << static_cast<long long>(total_requests)
              << " responses/phase bitwise-identical to the serial "
                 "reference (and reference == blas::spmm); cache hit rate "
              << hit_rate << "\n";
  }
  return 0;
}
