// Ablation: inspector cost scaling vs problem size and distribution
// structure (the mechanism behind Table 3 and Figure 4).
//
// Fixed P; growing N. Replicated distribution relations answer ownership
// locally, so inspector communication stays proportional to the BOUNDARY;
// the Chaos distributed translation table pays all-to-alls with volume
// proportional to the PROBLEM SIZE (table build) on top.
//
// `--trace=<file>` / `--comm-matrix` record the whole sweep and assert
// the comm reconciliation invariant (support/trace_cli.hpp).
#include <iostream>

#include "common.hpp"
#include "support/text_table.hpp"
#include "support/trace_cli.hpp"

int main(int argc, char** argv) {
  using namespace bernoulli;
  using spmd::Variant;

  auto opts = bench::Options::parse(argc, argv);
  support::ObsOptions& obs = opts.obs;

  std::cout << "=== Ablation: inspector communication volume vs N ===\n"
            << "(P = 8; modeled bytes moved by the whole inspector phase, "
               "summed over ranks)\n\n";

  const int P = 8;
  support::obs_begin(obs);
  long long commstats_messages = 0;
  long long commstats_bytes = 0;
  TextTable table({"points/proc", "N (rows)", "mixed bytes", "chaos bytes",
                   "chaos/mixed"});
  for (index_t side : {4, 8, 12, 16}) {
    auto g = workloads::grid3d_7pt(side * P, side, side, 5, 41);
    formats::BsOrdering ord = workloads::blocksolve_ordering(g.matrix, 5);
    formats::BsMatrix bs = formats::BsMatrix::build(g.matrix, ord);
    formats::Coo permuted = bs.to_coo_permuted();
    bench::Problem prob{formats::Csr::from_coo(permuted),
                        distrib::rowruns_from_color_ptr(ord.color_ptr,
                                                        permuted.rows(), P),
                        5};

    auto mixed =
        bench::measure_variant(prob, P, Variant::kBernoulliMixed, 2, 1);
    auto chaos =
        bench::measure_variant(prob, P, Variant::kIndirectMixed, 2, 1);
    commstats_messages += mixed.total_messages + chaos.total_messages;
    commstats_bytes += mixed.total_bytes + chaos.total_bytes;

    table.new_row();
    table.add(static_cast<long long>(side * side * side));
    table.add(static_cast<long long>(prob.matrix.rows()));
    table.add(mixed.inspector_bytes);
    table.add(chaos.inspector_bytes);
    table.add(static_cast<double>(chaos.inspector_bytes) /
                  static_cast<double>(std::max<long long>(
                      mixed.inspector_bytes, 1)),
              1);
  }
  std::cout << table.str()
            << "\nMixed inspector bytes grow with the BOUNDARY "
               "(surface); the Chaos table\nadds volume proportional to N "
               "— the structural point of Table 3.\n";
  support::obs_end(obs, commstats_messages, commstats_bytes);
  opts.finish();
  return 0;
}
