// Ablation: format conversion cost and storage footprint.
//
// Choosing the best format per problem (Table 1) only pays off if getting
// INTO the format is affordable; this bench reports conversion time from
// canonical COO and the storage each format occupies, across the Table-1
// suite — including Diagonal's skyline blow-up on irregular matrices.
//
// `--trace=<file>` / `--comm-matrix` / `--report=<file>` are accepted for
// uniformity with the distributed benches; this driver is sequential, so
// the epilogue reconciles against zero modeled traffic.
#include <functional>
#include <iostream>

#include "common.hpp"
#include "formats/formats.hpp"
#include "support/text_table.hpp"
#include "support/timer.hpp"
#include "support/trace_cli.hpp"
#include "workloads/suite.hpp"

namespace {

using namespace bernoulli;

double once_seconds(const std::function<void()>& fn) {
  double best = 1e30;
  for (int rep = 0; rep < 3; ++rep) {
    WallTimer t;
    fn();
    best = std::min(best, t.seconds());
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  auto opts = bernoulli::bench::Options::parse(argc, argv);
  bernoulli::support::ObsOptions& obs = opts.obs;
  bernoulli::support::obs_begin(obs);

  std::cout << "=== Ablation: conversion time (ms) / storage (KiB) from "
               "canonical COO ===\n\n";

  std::vector<std::string> headers{"Name"};
  for (formats::Kind k : formats::sparse_kinds())
    headers.push_back(formats::kind_name(k));
  TextTable table(headers);

  for (const auto& m : workloads::table1_suite()) {
    table.new_row();
    table.add(m.name);
    for (formats::Kind k : formats::sparse_kinds()) {
      double secs = once_seconds([&] { formats::AnyFormat f(k, m.matrix); });
      formats::AnyFormat f(k, m.matrix);
      std::ostringstream cell;
      cell.setf(std::ios::fixed);
      cell.precision(1);
      cell << secs * 1e3 << "/"
           << static_cast<double>(f.storage_bytes()) / 1024.0;
      table.add(cell.str());
    }
  }
  std::cout << table.str()
            << "\nNote Diagonal's storage on 685_bus/memplus: skylines "
               "between first and last\nnonzero of every diagonal explode "
               "on irregular sparsity — the flip side of\nits Table-1 wins "
               "on banded problems.\n";
  // No machine runs here; the epilogue still validates the (empty) trace
  // and prints/export whatever was requested.
  bernoulli::support::obs_end(obs, 0, 0);
  opts.finish();
  return 0;
}
