// Ablation/extension: ordering x format interaction.
//
// Table 1 shows format choice depends on matrix structure; structure
// itself is malleable — a bandwidth-reducing ordering (Reverse
// Cuthill-McKee, George & Liu [10] in the paper's references) can move a
// matrix from the "Diagonal format explodes" regime into its sweet spot.
// This bench scrambles a grid matrix, then measures each format's SpMV
// before and after RCM.
//
// `--trace=<file>` / `--comm-matrix` / `--report=<file>` are accepted for
// uniformity with the distributed benches; this driver is sequential, so
// the epilogue reconciles against zero modeled traffic.
#include <functional>
#include <iostream>

#include "common.hpp"
#include "formats/formats.hpp"
#include "support/rng.hpp"
#include "support/trace_cli.hpp"
#include "support/text_table.hpp"
#include "support/timer.hpp"
#include "workloads/rcm.hpp"
#include "workloads/suite.hpp"

namespace {

using namespace bernoulli;

double best_seconds(const std::function<void()>& fn) {
  double best = 1e30, spent = 0;
  int reps = 0;
  while (reps < 3 || (spent < 0.05 && reps < 300)) {
    WallTimer t;
    fn();
    double s = t.seconds();
    best = std::min(best, s);
    spent += s;
    ++reps;
  }
  return best;
}

double rate(const formats::Coo& a, formats::Kind k) {
  formats::AnyFormat f(k, a);
  Vector x(static_cast<std::size_t>(a.cols()), 1.0);
  Vector y(static_cast<std::size_t>(a.rows()), 0.0);
  double secs = best_seconds([&] { f.spmv(x, y); });
  return 2.0 * static_cast<double>(a.nnz()) / secs / 1e6;
}

}  // namespace

int main(int argc, char** argv) {
  auto opts = bernoulli::bench::Options::parse(argc, argv);
  bernoulli::support::ObsOptions& obs = opts.obs;
  bernoulli::support::obs_begin(obs);

  std::cout << "=== Ablation: RCM ordering x storage format ===\n"
            << "(gr_30_30 grid Laplacian, randomly scrambled, then RCM'd;\n"
            << " SpMV MFLOPS per format)\n\n";

  formats::Coo grid = workloads::suite_matrix("gr_30_30").matrix;
  SplitMix64 rng(9);
  std::vector<index_t> shuffle(static_cast<std::size_t>(grid.rows()));
  for (std::size_t i = 0; i < shuffle.size(); ++i)
    shuffle[i] = static_cast<index_t>(i);
  for (std::size_t i = shuffle.size(); i > 1; --i)
    std::swap(shuffle[i - 1], shuffle[rng.next_below(i)]);
  formats::Coo scrambled = workloads::permute_symmetric(grid, shuffle);
  formats::Coo restored =
      workloads::permute_symmetric(scrambled,
                                   workloads::rcm_ordering(scrambled));

  std::cout << "bandwidth: natural " << workloads::bandwidth(grid)
            << ", scrambled " << workloads::bandwidth(scrambled)
            << ", after RCM " << workloads::bandwidth(restored) << "\n\n";

  TextTable table({"format", "natural", "scrambled", "RCM-restored"});
  for (formats::Kind k : formats::sparse_kinds()) {
    table.new_row();
    table.add(formats::kind_name(k));
    table.add(rate(grid, k), 1);
    table.add(rate(scrambled, k), 1);
    table.add(rate(restored, k), 1);
  }
  std::cout << table.str()
            << "\nDiagonal collapses under scrambling (skylines span the "
               "matrix) and recovers\nafter RCM; index-based formats are "
               "largely ordering-insensitive.\n";
  // No machine runs here; the epilogue still validates the (empty) trace
  // and prints/export whatever was requested.
  bernoulli::support::obs_end(obs, 0, 0);
  opts.finish();
  return 0;
}
