#!/usr/bin/env sh
# Tier-1 verification (ROADMAP.md) in a clean build directory, with the
# warning set promoted to errors so new code keeps the tree warning-free.
#
#   ./check.sh            configure + build + ctest
#   BUILD_DIR=foo ./check.sh   use a different build directory
set -eu

BUILD_DIR="${BUILD_DIR:-check-build}"

cmake -B "$BUILD_DIR" -S . -DCMAKE_CXX_FLAGS="-Wall -Wextra -Werror"
cmake --build "$BUILD_DIR" -j
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc 2>/dev/null || echo 4)"
echo "check.sh: all green"
