file(REMOVE_RECURSE
  "CMakeFiles/example_iccg.dir/iccg.cpp.o"
  "CMakeFiles/example_iccg.dir/iccg.cpp.o.d"
  "example_iccg"
  "example_iccg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_iccg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
