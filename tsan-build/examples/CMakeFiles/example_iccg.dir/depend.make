# Empty dependencies file for example_iccg.
# This may be replaced when dependencies are built.
