# Empty dependencies file for example_direct_solver.
# This may be replaced when dependencies are built.
