file(REMOVE_RECURSE
  "CMakeFiles/example_direct_solver.dir/direct_solver.cpp.o"
  "CMakeFiles/example_direct_solver.dir/direct_solver.cpp.o.d"
  "example_direct_solver"
  "example_direct_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_direct_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
