file(REMOVE_RECURSE
  "CMakeFiles/example_custom_format.dir/custom_format.cpp.o"
  "CMakeFiles/example_custom_format.dir/custom_format.cpp.o.d"
  "example_custom_format"
  "example_custom_format.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_custom_format.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
