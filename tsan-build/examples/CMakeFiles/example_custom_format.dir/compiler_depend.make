# Empty compiler generated dependencies file for example_custom_format.
# This may be replaced when dependencies are built.
