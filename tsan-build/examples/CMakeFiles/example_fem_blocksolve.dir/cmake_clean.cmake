file(REMOVE_RECURSE
  "CMakeFiles/example_fem_blocksolve.dir/fem_blocksolve.cpp.o"
  "CMakeFiles/example_fem_blocksolve.dir/fem_blocksolve.cpp.o.d"
  "example_fem_blocksolve"
  "example_fem_blocksolve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_fem_blocksolve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
