# Empty dependencies file for example_fem_blocksolve.
# This may be replaced when dependencies are built.
