file(REMOVE_RECURSE
  "CMakeFiles/example_parallel_compile.dir/parallel_compile.cpp.o"
  "CMakeFiles/example_parallel_compile.dir/parallel_compile.cpp.o.d"
  "example_parallel_compile"
  "example_parallel_compile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_parallel_compile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
