# Empty dependencies file for example_parallel_compile.
# This may be replaced when dependencies are built.
