file(REMOVE_RECURSE
  "CMakeFiles/example_distributions.dir/distributions.cpp.o"
  "CMakeFiles/example_distributions.dir/distributions.cpp.o.d"
  "example_distributions"
  "example_distributions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_distributions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
