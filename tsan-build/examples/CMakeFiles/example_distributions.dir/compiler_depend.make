# Empty compiler generated dependencies file for example_distributions.
# This may be replaced when dependencies are built.
