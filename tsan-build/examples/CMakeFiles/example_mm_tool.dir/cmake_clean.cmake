file(REMOVE_RECURSE
  "CMakeFiles/example_mm_tool.dir/mm_tool.cpp.o"
  "CMakeFiles/example_mm_tool.dir/mm_tool.cpp.o.d"
  "example_mm_tool"
  "example_mm_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_mm_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
