# Empty dependencies file for example_mm_tool.
# This may be replaced when dependencies are built.
