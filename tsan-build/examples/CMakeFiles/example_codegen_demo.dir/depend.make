# Empty dependencies file for example_codegen_demo.
# This may be replaced when dependencies are built.
