file(REMOVE_RECURSE
  "CMakeFiles/example_codegen_demo.dir/codegen_demo.cpp.o"
  "CMakeFiles/example_codegen_demo.dir/codegen_demo.cpp.o.d"
  "example_codegen_demo"
  "example_codegen_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_codegen_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
