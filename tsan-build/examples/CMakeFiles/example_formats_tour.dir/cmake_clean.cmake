file(REMOVE_RECURSE
  "CMakeFiles/example_formats_tour.dir/formats_tour.cpp.o"
  "CMakeFiles/example_formats_tour.dir/formats_tour.cpp.o.d"
  "example_formats_tour"
  "example_formats_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_formats_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
