# Empty compiler generated dependencies file for example_formats_tour.
# This may be replaced when dependencies are built.
