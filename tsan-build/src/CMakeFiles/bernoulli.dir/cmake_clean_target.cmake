file(REMOVE_RECURSE
  "libbernoulli.a"
)
