# Empty dependencies file for bernoulli.
# This may be replaced when dependencies are built.
