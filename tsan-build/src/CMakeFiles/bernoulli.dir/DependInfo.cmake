
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/attribution.cpp" "src/CMakeFiles/bernoulli.dir/analysis/attribution.cpp.o" "gcc" "src/CMakeFiles/bernoulli.dir/analysis/attribution.cpp.o.d"
  "/root/repo/src/analysis/critical_path.cpp" "src/CMakeFiles/bernoulli.dir/analysis/critical_path.cpp.o" "gcc" "src/CMakeFiles/bernoulli.dir/analysis/critical_path.cpp.o.d"
  "/root/repo/src/analysis/hooks.cpp" "src/CMakeFiles/bernoulli.dir/analysis/hooks.cpp.o" "gcc" "src/CMakeFiles/bernoulli.dir/analysis/hooks.cpp.o.d"
  "/root/repo/src/analysis/model_check.cpp" "src/CMakeFiles/bernoulli.dir/analysis/model_check.cpp.o" "gcc" "src/CMakeFiles/bernoulli.dir/analysis/model_check.cpp.o.d"
  "/root/repo/src/analysis/report.cpp" "src/CMakeFiles/bernoulli.dir/analysis/report.cpp.o" "gcc" "src/CMakeFiles/bernoulli.dir/analysis/report.cpp.o.d"
  "/root/repo/src/blas/spgemm.cpp" "src/CMakeFiles/bernoulli.dir/blas/spgemm.cpp.o" "gcc" "src/CMakeFiles/bernoulli.dir/blas/spgemm.cpp.o.d"
  "/root/repo/src/blas/spmm.cpp" "src/CMakeFiles/bernoulli.dir/blas/spmm.cpp.o" "gcc" "src/CMakeFiles/bernoulli.dir/blas/spmm.cpp.o.d"
  "/root/repo/src/blas/transpose.cpp" "src/CMakeFiles/bernoulli.dir/blas/transpose.cpp.o" "gcc" "src/CMakeFiles/bernoulli.dir/blas/transpose.cpp.o.d"
  "/root/repo/src/compiler/emit.cpp" "src/CMakeFiles/bernoulli.dir/compiler/emit.cpp.o" "gcc" "src/CMakeFiles/bernoulli.dir/compiler/emit.cpp.o.d"
  "/root/repo/src/compiler/emit_standalone.cpp" "src/CMakeFiles/bernoulli.dir/compiler/emit_standalone.cpp.o" "gcc" "src/CMakeFiles/bernoulli.dir/compiler/emit_standalone.cpp.o.d"
  "/root/repo/src/compiler/exec_linked.cpp" "src/CMakeFiles/bernoulli.dir/compiler/exec_linked.cpp.o" "gcc" "src/CMakeFiles/bernoulli.dir/compiler/exec_linked.cpp.o.d"
  "/root/repo/src/compiler/executor.cpp" "src/CMakeFiles/bernoulli.dir/compiler/executor.cpp.o" "gcc" "src/CMakeFiles/bernoulli.dir/compiler/executor.cpp.o.d"
  "/root/repo/src/compiler/explain.cpp" "src/CMakeFiles/bernoulli.dir/compiler/explain.cpp.o" "gcc" "src/CMakeFiles/bernoulli.dir/compiler/explain.cpp.o.d"
  "/root/repo/src/compiler/link.cpp" "src/CMakeFiles/bernoulli.dir/compiler/link.cpp.o" "gcc" "src/CMakeFiles/bernoulli.dir/compiler/link.cpp.o.d"
  "/root/repo/src/compiler/loopnest.cpp" "src/CMakeFiles/bernoulli.dir/compiler/loopnest.cpp.o" "gcc" "src/CMakeFiles/bernoulli.dir/compiler/loopnest.cpp.o.d"
  "/root/repo/src/compiler/planner.cpp" "src/CMakeFiles/bernoulli.dir/compiler/planner.cpp.o" "gcc" "src/CMakeFiles/bernoulli.dir/compiler/planner.cpp.o.d"
  "/root/repo/src/compiler/specialize.cpp" "src/CMakeFiles/bernoulli.dir/compiler/specialize.cpp.o" "gcc" "src/CMakeFiles/bernoulli.dir/compiler/specialize.cpp.o.d"
  "/root/repo/src/distrib/chaos.cpp" "src/CMakeFiles/bernoulli.dir/distrib/chaos.cpp.o" "gcc" "src/CMakeFiles/bernoulli.dir/distrib/chaos.cpp.o.d"
  "/root/repo/src/distrib/distribution.cpp" "src/CMakeFiles/bernoulli.dir/distrib/distribution.cpp.o" "gcc" "src/CMakeFiles/bernoulli.dir/distrib/distribution.cpp.o.d"
  "/root/repo/src/formats/blocksolve.cpp" "src/CMakeFiles/bernoulli.dir/formats/blocksolve.cpp.o" "gcc" "src/CMakeFiles/bernoulli.dir/formats/blocksolve.cpp.o.d"
  "/root/repo/src/formats/bsr.cpp" "src/CMakeFiles/bernoulli.dir/formats/bsr.cpp.o" "gcc" "src/CMakeFiles/bernoulli.dir/formats/bsr.cpp.o.d"
  "/root/repo/src/formats/ccs.cpp" "src/CMakeFiles/bernoulli.dir/formats/ccs.cpp.o" "gcc" "src/CMakeFiles/bernoulli.dir/formats/ccs.cpp.o.d"
  "/root/repo/src/formats/coo.cpp" "src/CMakeFiles/bernoulli.dir/formats/coo.cpp.o" "gcc" "src/CMakeFiles/bernoulli.dir/formats/coo.cpp.o.d"
  "/root/repo/src/formats/csr.cpp" "src/CMakeFiles/bernoulli.dir/formats/csr.cpp.o" "gcc" "src/CMakeFiles/bernoulli.dir/formats/csr.cpp.o.d"
  "/root/repo/src/formats/dense.cpp" "src/CMakeFiles/bernoulli.dir/formats/dense.cpp.o" "gcc" "src/CMakeFiles/bernoulli.dir/formats/dense.cpp.o.d"
  "/root/repo/src/formats/dia.cpp" "src/CMakeFiles/bernoulli.dir/formats/dia.cpp.o" "gcc" "src/CMakeFiles/bernoulli.dir/formats/dia.cpp.o.d"
  "/root/repo/src/formats/ell.cpp" "src/CMakeFiles/bernoulli.dir/formats/ell.cpp.o" "gcc" "src/CMakeFiles/bernoulli.dir/formats/ell.cpp.o.d"
  "/root/repo/src/formats/formats.cpp" "src/CMakeFiles/bernoulli.dir/formats/formats.cpp.o" "gcc" "src/CMakeFiles/bernoulli.dir/formats/formats.cpp.o.d"
  "/root/repo/src/formats/jds.cpp" "src/CMakeFiles/bernoulli.dir/formats/jds.cpp.o" "gcc" "src/CMakeFiles/bernoulli.dir/formats/jds.cpp.o.d"
  "/root/repo/src/formats/sell.cpp" "src/CMakeFiles/bernoulli.dir/formats/sell.cpp.o" "gcc" "src/CMakeFiles/bernoulli.dir/formats/sell.cpp.o.d"
  "/root/repo/src/formats/skyline.cpp" "src/CMakeFiles/bernoulli.dir/formats/skyline.cpp.o" "gcc" "src/CMakeFiles/bernoulli.dir/formats/skyline.cpp.o.d"
  "/root/repo/src/formats/sparse_vector.cpp" "src/CMakeFiles/bernoulli.dir/formats/sparse_vector.cpp.o" "gcc" "src/CMakeFiles/bernoulli.dir/formats/sparse_vector.cpp.o.d"
  "/root/repo/src/mm/matrix_market.cpp" "src/CMakeFiles/bernoulli.dir/mm/matrix_market.cpp.o" "gcc" "src/CMakeFiles/bernoulli.dir/mm/matrix_market.cpp.o.d"
  "/root/repo/src/relation/array_views.cpp" "src/CMakeFiles/bernoulli.dir/relation/array_views.cpp.o" "gcc" "src/CMakeFiles/bernoulli.dir/relation/array_views.cpp.o.d"
  "/root/repo/src/relation/bsr_view.cpp" "src/CMakeFiles/bernoulli.dir/relation/bsr_view.cpp.o" "gcc" "src/CMakeFiles/bernoulli.dir/relation/bsr_view.cpp.o.d"
  "/root/repo/src/relation/descriptor.cpp" "src/CMakeFiles/bernoulli.dir/relation/descriptor.cpp.o" "gcc" "src/CMakeFiles/bernoulli.dir/relation/descriptor.cpp.o.d"
  "/root/repo/src/relation/ell_view.cpp" "src/CMakeFiles/bernoulli.dir/relation/ell_view.cpp.o" "gcc" "src/CMakeFiles/bernoulli.dir/relation/ell_view.cpp.o.d"
  "/root/repo/src/relation/format_spec.cpp" "src/CMakeFiles/bernoulli.dir/relation/format_spec.cpp.o" "gcc" "src/CMakeFiles/bernoulli.dir/relation/format_spec.cpp.o.d"
  "/root/repo/src/relation/hash_index.cpp" "src/CMakeFiles/bernoulli.dir/relation/hash_index.cpp.o" "gcc" "src/CMakeFiles/bernoulli.dir/relation/hash_index.cpp.o.d"
  "/root/repo/src/relation/jds_view.cpp" "src/CMakeFiles/bernoulli.dir/relation/jds_view.cpp.o" "gcc" "src/CMakeFiles/bernoulli.dir/relation/jds_view.cpp.o.d"
  "/root/repo/src/relation/query.cpp" "src/CMakeFiles/bernoulli.dir/relation/query.cpp.o" "gcc" "src/CMakeFiles/bernoulli.dir/relation/query.cpp.o.d"
  "/root/repo/src/relation/sell_view.cpp" "src/CMakeFiles/bernoulli.dir/relation/sell_view.cpp.o" "gcc" "src/CMakeFiles/bernoulli.dir/relation/sell_view.cpp.o.d"
  "/root/repo/src/relation/spa_view.cpp" "src/CMakeFiles/bernoulli.dir/relation/spa_view.cpp.o" "gcc" "src/CMakeFiles/bernoulli.dir/relation/spa_view.cpp.o.d"
  "/root/repo/src/relation/sparse_vector_view.cpp" "src/CMakeFiles/bernoulli.dir/relation/sparse_vector_view.cpp.o" "gcc" "src/CMakeFiles/bernoulli.dir/relation/sparse_vector_view.cpp.o.d"
  "/root/repo/src/relation/view.cpp" "src/CMakeFiles/bernoulli.dir/relation/view.cpp.o" "gcc" "src/CMakeFiles/bernoulli.dir/relation/view.cpp.o.d"
  "/root/repo/src/runtime/machine.cpp" "src/CMakeFiles/bernoulli.dir/runtime/machine.cpp.o" "gcc" "src/CMakeFiles/bernoulli.dir/runtime/machine.cpp.o.d"
  "/root/repo/src/server/kernel_server.cpp" "src/CMakeFiles/bernoulli.dir/server/kernel_server.cpp.o" "gcc" "src/CMakeFiles/bernoulli.dir/server/kernel_server.cpp.o.d"
  "/root/repo/src/solvers/cg.cpp" "src/CMakeFiles/bernoulli.dir/solvers/cg.cpp.o" "gcc" "src/CMakeFiles/bernoulli.dir/solvers/cg.cpp.o.d"
  "/root/repo/src/solvers/dist_cg.cpp" "src/CMakeFiles/bernoulli.dir/solvers/dist_cg.cpp.o" "gcc" "src/CMakeFiles/bernoulli.dir/solvers/dist_cg.cpp.o.d"
  "/root/repo/src/solvers/dist_gmres.cpp" "src/CMakeFiles/bernoulli.dir/solvers/dist_gmres.cpp.o" "gcc" "src/CMakeFiles/bernoulli.dir/solvers/dist_gmres.cpp.o.d"
  "/root/repo/src/solvers/gauss_seidel.cpp" "src/CMakeFiles/bernoulli.dir/solvers/gauss_seidel.cpp.o" "gcc" "src/CMakeFiles/bernoulli.dir/solvers/gauss_seidel.cpp.o.d"
  "/root/repo/src/solvers/gmres.cpp" "src/CMakeFiles/bernoulli.dir/solvers/gmres.cpp.o" "gcc" "src/CMakeFiles/bernoulli.dir/solvers/gmres.cpp.o.d"
  "/root/repo/src/solvers/ic.cpp" "src/CMakeFiles/bernoulli.dir/solvers/ic.cpp.o" "gcc" "src/CMakeFiles/bernoulli.dir/solvers/ic.cpp.o.d"
  "/root/repo/src/spmd/comm.cpp" "src/CMakeFiles/bernoulli.dir/spmd/comm.cpp.o" "gcc" "src/CMakeFiles/bernoulli.dir/spmd/comm.cpp.o.d"
  "/root/repo/src/spmd/dist_compile.cpp" "src/CMakeFiles/bernoulli.dir/spmd/dist_compile.cpp.o" "gcc" "src/CMakeFiles/bernoulli.dir/spmd/dist_compile.cpp.o.d"
  "/root/repo/src/spmd/matvec.cpp" "src/CMakeFiles/bernoulli.dir/spmd/matvec.cpp.o" "gcc" "src/CMakeFiles/bernoulli.dir/spmd/matvec.cpp.o.d"
  "/root/repo/src/spmd/redistribute.cpp" "src/CMakeFiles/bernoulli.dir/spmd/redistribute.cpp.o" "gcc" "src/CMakeFiles/bernoulli.dir/spmd/redistribute.cpp.o.d"
  "/root/repo/src/spmd/spmm.cpp" "src/CMakeFiles/bernoulli.dir/spmd/spmm.cpp.o" "gcc" "src/CMakeFiles/bernoulli.dir/spmd/spmm.cpp.o.d"
  "/root/repo/src/support/counters.cpp" "src/CMakeFiles/bernoulli.dir/support/counters.cpp.o" "gcc" "src/CMakeFiles/bernoulli.dir/support/counters.cpp.o.d"
  "/root/repo/src/support/dynlib.cpp" "src/CMakeFiles/bernoulli.dir/support/dynlib.cpp.o" "gcc" "src/CMakeFiles/bernoulli.dir/support/dynlib.cpp.o.d"
  "/root/repo/src/support/histogram.cpp" "src/CMakeFiles/bernoulli.dir/support/histogram.cpp.o" "gcc" "src/CMakeFiles/bernoulli.dir/support/histogram.cpp.o.d"
  "/root/repo/src/support/metrics.cpp" "src/CMakeFiles/bernoulli.dir/support/metrics.cpp.o" "gcc" "src/CMakeFiles/bernoulli.dir/support/metrics.cpp.o.d"
  "/root/repo/src/support/profile.cpp" "src/CMakeFiles/bernoulli.dir/support/profile.cpp.o" "gcc" "src/CMakeFiles/bernoulli.dir/support/profile.cpp.o.d"
  "/root/repo/src/support/text_table.cpp" "src/CMakeFiles/bernoulli.dir/support/text_table.cpp.o" "gcc" "src/CMakeFiles/bernoulli.dir/support/text_table.cpp.o.d"
  "/root/repo/src/support/thread_pool.cpp" "src/CMakeFiles/bernoulli.dir/support/thread_pool.cpp.o" "gcc" "src/CMakeFiles/bernoulli.dir/support/thread_pool.cpp.o.d"
  "/root/repo/src/support/trace.cpp" "src/CMakeFiles/bernoulli.dir/support/trace.cpp.o" "gcc" "src/CMakeFiles/bernoulli.dir/support/trace.cpp.o.d"
  "/root/repo/src/workloads/bs_order.cpp" "src/CMakeFiles/bernoulli.dir/workloads/bs_order.cpp.o" "gcc" "src/CMakeFiles/bernoulli.dir/workloads/bs_order.cpp.o.d"
  "/root/repo/src/workloads/cliques.cpp" "src/CMakeFiles/bernoulli.dir/workloads/cliques.cpp.o" "gcc" "src/CMakeFiles/bernoulli.dir/workloads/cliques.cpp.o.d"
  "/root/repo/src/workloads/coloring.cpp" "src/CMakeFiles/bernoulli.dir/workloads/coloring.cpp.o" "gcc" "src/CMakeFiles/bernoulli.dir/workloads/coloring.cpp.o.d"
  "/root/repo/src/workloads/grid.cpp" "src/CMakeFiles/bernoulli.dir/workloads/grid.cpp.o" "gcc" "src/CMakeFiles/bernoulli.dir/workloads/grid.cpp.o.d"
  "/root/repo/src/workloads/inode.cpp" "src/CMakeFiles/bernoulli.dir/workloads/inode.cpp.o" "gcc" "src/CMakeFiles/bernoulli.dir/workloads/inode.cpp.o.d"
  "/root/repo/src/workloads/rcm.cpp" "src/CMakeFiles/bernoulli.dir/workloads/rcm.cpp.o" "gcc" "src/CMakeFiles/bernoulli.dir/workloads/rcm.cpp.o.d"
  "/root/repo/src/workloads/stats.cpp" "src/CMakeFiles/bernoulli.dir/workloads/stats.cpp.o" "gcc" "src/CMakeFiles/bernoulli.dir/workloads/stats.cpp.o.d"
  "/root/repo/src/workloads/suite.cpp" "src/CMakeFiles/bernoulli.dir/workloads/suite.cpp.o" "gcc" "src/CMakeFiles/bernoulli.dir/workloads/suite.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
