# Empty compiler generated dependencies file for spmm_dist_test.
# This may be replaced when dependencies are built.
