file(REMOVE_RECURSE
  "CMakeFiles/spmm_dist_test.dir/spmm_dist_test.cpp.o"
  "CMakeFiles/spmm_dist_test.dir/spmm_dist_test.cpp.o.d"
  "spmm_dist_test"
  "spmm_dist_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spmm_dist_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
