file(REMOVE_RECURSE
  "CMakeFiles/counters_test.dir/counters_test.cpp.o"
  "CMakeFiles/counters_test.dir/counters_test.cpp.o.d"
  "counters_test"
  "counters_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/counters_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
