# Empty dependencies file for compiler_sweep_test.
# This may be replaced when dependencies are built.
