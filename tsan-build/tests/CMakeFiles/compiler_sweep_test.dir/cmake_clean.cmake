file(REMOVE_RECURSE
  "CMakeFiles/compiler_sweep_test.dir/compiler_sweep_test.cpp.o"
  "CMakeFiles/compiler_sweep_test.dir/compiler_sweep_test.cpp.o.d"
  "compiler_sweep_test"
  "compiler_sweep_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compiler_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
