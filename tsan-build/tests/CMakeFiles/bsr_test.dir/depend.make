# Empty dependencies file for bsr_test.
# This may be replaced when dependencies are built.
