file(REMOVE_RECURSE
  "CMakeFiles/bsr_test.dir/bsr_test.cpp.o"
  "CMakeFiles/bsr_test.dir/bsr_test.cpp.o.d"
  "bsr_test"
  "bsr_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
