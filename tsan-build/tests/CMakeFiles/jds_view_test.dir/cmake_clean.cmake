file(REMOVE_RECURSE
  "CMakeFiles/jds_view_test.dir/jds_view_test.cpp.o"
  "CMakeFiles/jds_view_test.dir/jds_view_test.cpp.o.d"
  "jds_view_test"
  "jds_view_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jds_view_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
