# Empty dependencies file for jds_view_test.
# This may be replaced when dependencies are built.
