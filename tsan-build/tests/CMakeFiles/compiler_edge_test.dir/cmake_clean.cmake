file(REMOVE_RECURSE
  "CMakeFiles/compiler_edge_test.dir/compiler_edge_test.cpp.o"
  "CMakeFiles/compiler_edge_test.dir/compiler_edge_test.cpp.o.d"
  "compiler_edge_test"
  "compiler_edge_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compiler_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
