file(REMOVE_RECURSE
  "CMakeFiles/ledger_test.dir/ledger_test.cpp.o"
  "CMakeFiles/ledger_test.dir/ledger_test.cpp.o.d"
  "ledger_test"
  "ledger_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ledger_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
