# Empty dependencies file for metrics_flush_test.
# This may be replaced when dependencies are built.
