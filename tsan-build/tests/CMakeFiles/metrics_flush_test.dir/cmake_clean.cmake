file(REMOVE_RECURSE
  "CMakeFiles/metrics_flush_test.dir/metrics_flush_test.cpp.o"
  "CMakeFiles/metrics_flush_test.dir/metrics_flush_test.cpp.o.d"
  "metrics_flush_test"
  "metrics_flush_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metrics_flush_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
