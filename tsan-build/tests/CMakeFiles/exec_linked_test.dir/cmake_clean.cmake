file(REMOVE_RECURSE
  "CMakeFiles/exec_linked_test.dir/exec_linked_test.cpp.o"
  "CMakeFiles/exec_linked_test.dir/exec_linked_test.cpp.o.d"
  "exec_linked_test"
  "exec_linked_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exec_linked_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
