# Empty compiler generated dependencies file for spa_test.
# This may be replaced when dependencies are built.
