file(REMOVE_RECURSE
  "CMakeFiles/spa_test.dir/spa_test.cpp.o"
  "CMakeFiles/spa_test.dir/spa_test.cpp.o.d"
  "spa_test"
  "spa_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spa_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
