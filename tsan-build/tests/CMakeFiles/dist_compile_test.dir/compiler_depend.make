# Empty compiler generated dependencies file for dist_compile_test.
# This may be replaced when dependencies are built.
