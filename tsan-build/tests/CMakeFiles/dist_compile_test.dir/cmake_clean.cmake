file(REMOVE_RECURSE
  "CMakeFiles/dist_compile_test.dir/dist_compile_test.cpp.o"
  "CMakeFiles/dist_compile_test.dir/dist_compile_test.cpp.o.d"
  "dist_compile_test"
  "dist_compile_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dist_compile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
