file(REMOVE_RECURSE
  "CMakeFiles/distrib_test.dir/distrib_test.cpp.o"
  "CMakeFiles/distrib_test.dir/distrib_test.cpp.o.d"
  "distrib_test"
  "distrib_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distrib_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
