# Empty dependencies file for distrib_test.
# This may be replaced when dependencies are built.
