file(REMOVE_RECURSE
  "CMakeFiles/kernel_copy_test.dir/kernel_copy_test.cpp.o"
  "CMakeFiles/kernel_copy_test.dir/kernel_copy_test.cpp.o.d"
  "kernel_copy_test"
  "kernel_copy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_copy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
