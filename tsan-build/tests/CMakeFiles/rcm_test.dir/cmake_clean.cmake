file(REMOVE_RECURSE
  "CMakeFiles/rcm_test.dir/rcm_test.cpp.o"
  "CMakeFiles/rcm_test.dir/rcm_test.cpp.o.d"
  "rcm_test"
  "rcm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
