# Empty compiler generated dependencies file for rcm_test.
# This may be replaced when dependencies are built.
