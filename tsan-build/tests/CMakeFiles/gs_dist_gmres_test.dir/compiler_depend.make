# Empty compiler generated dependencies file for gs_dist_gmres_test.
# This may be replaced when dependencies are built.
