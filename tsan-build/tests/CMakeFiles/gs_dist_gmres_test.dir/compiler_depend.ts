# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for gs_dist_gmres_test.
