file(REMOVE_RECURSE
  "CMakeFiles/gs_dist_gmres_test.dir/gs_dist_gmres_test.cpp.o"
  "CMakeFiles/gs_dist_gmres_test.dir/gs_dist_gmres_test.cpp.o.d"
  "gs_dist_gmres_test"
  "gs_dist_gmres_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gs_dist_gmres_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
