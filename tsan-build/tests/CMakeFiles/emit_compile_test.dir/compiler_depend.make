# Empty compiler generated dependencies file for emit_compile_test.
# This may be replaced when dependencies are built.
