file(REMOVE_RECURSE
  "CMakeFiles/emit_compile_test.dir/emit_compile_test.cpp.o"
  "CMakeFiles/emit_compile_test.dir/emit_compile_test.cpp.o.d"
  "emit_compile_test"
  "emit_compile_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emit_compile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
