file(REMOVE_RECURSE
  "CMakeFiles/redistribute_test.dir/redistribute_test.cpp.o"
  "CMakeFiles/redistribute_test.dir/redistribute_test.cpp.o.d"
  "redistribute_test"
  "redistribute_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redistribute_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
