# Empty compiler generated dependencies file for redistribute_test.
# This may be replaced when dependencies are built.
