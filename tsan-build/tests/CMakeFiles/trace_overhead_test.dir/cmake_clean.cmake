file(REMOVE_RECURSE
  "CMakeFiles/trace_overhead_test.dir/trace_overhead_test.cpp.o"
  "CMakeFiles/trace_overhead_test.dir/trace_overhead_test.cpp.o.d"
  "trace_overhead_test"
  "trace_overhead_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_overhead_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
