file(REMOVE_RECURSE
  "CMakeFiles/format_spec_test.dir/format_spec_test.cpp.o"
  "CMakeFiles/format_spec_test.dir/format_spec_test.cpp.o.d"
  "format_spec_test"
  "format_spec_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/format_spec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
