# Empty compiler generated dependencies file for format_spec_test.
# This may be replaced when dependencies are built.
