file(REMOVE_RECURSE
  "CMakeFiles/runtime_modes_test.dir/runtime_modes_test.cpp.o"
  "CMakeFiles/runtime_modes_test.dir/runtime_modes_test.cpp.o.d"
  "runtime_modes_test"
  "runtime_modes_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_modes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
