# Empty compiler generated dependencies file for runtime_modes_test.
# This may be replaced when dependencies are built.
