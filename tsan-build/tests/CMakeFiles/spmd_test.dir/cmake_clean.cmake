file(REMOVE_RECURSE
  "CMakeFiles/spmd_test.dir/spmd_test.cpp.o"
  "CMakeFiles/spmd_test.dir/spmd_test.cpp.o.d"
  "spmd_test"
  "spmd_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spmd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
