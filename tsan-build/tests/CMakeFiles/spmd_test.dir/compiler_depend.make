# Empty compiler generated dependencies file for spmd_test.
# This may be replaced when dependencies are built.
