file(REMOVE_RECURSE
  "CMakeFiles/transpose_dist_test.dir/transpose_dist_test.cpp.o"
  "CMakeFiles/transpose_dist_test.dir/transpose_dist_test.cpp.o.d"
  "transpose_dist_test"
  "transpose_dist_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transpose_dist_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
