# Empty dependencies file for transpose_dist_test.
# This may be replaced when dependencies are built.
