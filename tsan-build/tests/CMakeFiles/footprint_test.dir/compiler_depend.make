# Empty compiler generated dependencies file for footprint_test.
# This may be replaced when dependencies are built.
