file(REMOVE_RECURSE
  "CMakeFiles/footprint_test.dir/footprint_test.cpp.o"
  "CMakeFiles/footprint_test.dir/footprint_test.cpp.o.d"
  "footprint_test"
  "footprint_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/footprint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
