file(REMOVE_RECURSE
  "CMakeFiles/mm_test.dir/mm_test.cpp.o"
  "CMakeFiles/mm_test.dir/mm_test.cpp.o.d"
  "mm_test"
  "mm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
