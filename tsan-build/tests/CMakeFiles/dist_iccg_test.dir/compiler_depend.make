# Empty compiler generated dependencies file for dist_iccg_test.
# This may be replaced when dependencies are built.
