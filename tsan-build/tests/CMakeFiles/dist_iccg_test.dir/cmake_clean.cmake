file(REMOVE_RECURSE
  "CMakeFiles/dist_iccg_test.dir/dist_iccg_test.cpp.o"
  "CMakeFiles/dist_iccg_test.dir/dist_iccg_test.cpp.o.d"
  "dist_iccg_test"
  "dist_iccg_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dist_iccg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
