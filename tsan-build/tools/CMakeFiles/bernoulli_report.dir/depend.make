# Empty dependencies file for bernoulli_report.
# This may be replaced when dependencies are built.
