file(REMOVE_RECURSE
  "CMakeFiles/bernoulli_report.dir/bernoulli_report.cpp.o"
  "CMakeFiles/bernoulli_report.dir/bernoulli_report.cpp.o.d"
  "bernoulli_report"
  "bernoulli_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bernoulli_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
