file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_spmm.dir/bench_ablation_spmm.cpp.o"
  "CMakeFiles/bench_ablation_spmm.dir/bench_ablation_spmm.cpp.o.d"
  "bench_ablation_spmm"
  "bench_ablation_spmm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_spmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
