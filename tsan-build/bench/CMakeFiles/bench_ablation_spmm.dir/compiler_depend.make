# Empty compiler generated dependencies file for bench_ablation_spmm.
# This may be replaced when dependencies are built.
