file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_executor.dir/bench_table2_executor.cpp.o"
  "CMakeFiles/bench_table2_executor.dir/bench_table2_executor.cpp.o.d"
  "bench_table2_executor"
  "bench_table2_executor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_executor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
