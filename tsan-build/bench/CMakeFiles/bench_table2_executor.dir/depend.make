# Empty dependencies file for bench_table2_executor.
# This may be replaced when dependencies are built.
