# Empty dependencies file for bench_table1_formats.
# This may be replaced when dependencies are built.
