file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_formats.dir/bench_table1_formats.cpp.o"
  "CMakeFiles/bench_table1_formats.dir/bench_table1_formats.cpp.o.d"
  "bench_table1_formats"
  "bench_table1_formats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_formats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
