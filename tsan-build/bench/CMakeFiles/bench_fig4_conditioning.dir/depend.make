# Empty dependencies file for bench_fig4_conditioning.
# This may be replaced when dependencies are built.
