file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_conditioning.dir/bench_fig4_conditioning.cpp.o"
  "CMakeFiles/bench_fig4_conditioning.dir/bench_fig4_conditioning.cpp.o.d"
  "bench_fig4_conditioning"
  "bench_fig4_conditioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_conditioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
