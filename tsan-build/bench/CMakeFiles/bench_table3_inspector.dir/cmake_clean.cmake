file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_inspector.dir/bench_table3_inspector.cpp.o"
  "CMakeFiles/bench_table3_inspector.dir/bench_table3_inspector.cpp.o.d"
  "bench_table3_inspector"
  "bench_table3_inspector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_inspector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
