file(REMOVE_RECURSE
  "CMakeFiles/bench_kernels_gbench.dir/bench_kernels_gbench.cpp.o"
  "CMakeFiles/bench_kernels_gbench.dir/bench_kernels_gbench.cpp.o.d"
  "bench_kernels_gbench"
  "bench_kernels_gbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_kernels_gbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
