# Empty dependencies file for bench_kernels_gbench.
# This may be replaced when dependencies are built.
