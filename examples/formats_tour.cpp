// Formats tour: prints the storage layout of the paper's Fig. 1 example
// matrix in every supported format — CCS and CCCS reproduce Fig. 1(b) and
// 1(c) exactly.
#include <iostream>

#include "formats/formats.hpp"

int main() {
  using namespace bernoulli;
  using namespace bernoulli::formats;

  // The 6x6 example matrix of Fig. 1 (columns 2 and 4 empty).
  TripletBuilder b(6, 6);
  b.add(0, 0, 1.0);
  b.add(2, 0, 2.0);
  b.add(5, 0, 3.0);
  b.add(1, 1, 4.0);
  b.add(3, 3, 5.0);
  b.add(4, 3, 6.0);
  b.add(0, 5, 7.0);
  b.add(2, 5, 8.0);
  b.add(4, 5, 9.0);
  Coo coo = std::move(b).build();

  auto dump = [](const std::string& name, auto span) {
    std::cout << "  " << name << " =";
    for (auto v : span) std::cout << ' ' << v;
    std::cout << '\n';
  };

  std::cout << "The matrix (Fig. 1(a)):\n";
  Dense dense = Dense::from_coo(coo);
  for (index_t i = 0; i < 6; ++i) {
    std::cout << "  ";
    for (index_t j = 0; j < 6; ++j) std::cout << dense.at(i, j) << ' ';
    std::cout << '\n';
  }

  std::cout << "\nCoordinate (COO):\n";
  dump("ROWIND", coo.rowind());
  dump("COLIND", coo.colind());
  dump("VALS  ", coo.vals());

  std::cout << "\nCompressed Column Storage (Fig. 1(b)):\n";
  Ccs ccs = Ccs::from_coo(coo);
  dump("COLP  ", ccs.colp());
  dump("ROWIND", ccs.rowind());
  dump("VALS  ", ccs.vals());

  std::cout << "\nCompressed Compressed Column Storage (Fig. 1(c)):\n";
  Cccs cccs = Cccs::from_coo(coo);
  dump("COLIND", cccs.colind());
  dump("COLP  ", cccs.colp());
  dump("ROWIND", cccs.rowind());
  dump("VALS  ", cccs.vals());

  std::cout << "\nCompressed Row Storage:\n";
  Csr csr = Csr::from_coo(coo);
  dump("ROWPTR", csr.rowptr());
  dump("COLIND", csr.colind());
  dump("VALS  ", csr.vals());

  std::cout << "\nDiagonal (skyline-along-diagonals):\n";
  Dia dia = Dia::from_coo(coo);
  dump("OFFSETS", dia.offsets());
  dump("FIRST  ", dia.first());
  dump("DPTR   ", dia.dptr());
  dump("VALS   ", dia.vals());

  std::cout << "\nITPACK/ELLPACK (column-major, width "
            << Ell::from_coo(coo).width() << "):\n";
  Ell ell = Ell::from_coo(coo);
  dump("COLIND", ell.colind());
  dump("VALS  ", ell.vals());

  std::cout << "\nJagged Diagonal:\n";
  Jds jds = Jds::from_coo(coo);
  dump("PERM  ", jds.perm());
  dump("JDPTR ", jds.jdptr());
  dump("COLIND", jds.colind());
  dump("VALS  ", jds.vals());

  // Every layout above must round-trip to the same matrix.
  for (Kind k : sparse_kinds()) {
    AnyFormat f(k, coo);
    if (!(f.to_coo() == coo)) {
      std::cout << "ROUND TRIP FAILED for " << kind_name(k) << '\n';
      return 1;
    }
  }
  std::cout << "\nAll formats round-trip the matrix. OK\n";
  return 0;
}
