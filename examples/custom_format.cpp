// Custom format demo: teach the compiler a storage format it has never
// seen, from a textual specification over raw arrays — the extensibility
// claim of the paper made concrete. We invent "banded-by-row" storage: a
// dense FIRST array with each row's first stored column, plus per-row
// contiguous value runs (a simplified skyline). The compiler never learns
// what the arrays mean; it sees access methods and properties.
#include <iostream>

#include "compiler/loopnest.hpp"
#include "formats/csr.hpp"
#include "relation/format_spec.hpp"
#include "workloads/grid.hpp"

int main() {
  using namespace bernoulli;

  // A banded matrix (2-D grid Laplacian).
  auto g = workloads::grid2d_5pt(6, 6);
  formats::Csr csr = formats::Csr::from_coo(g.matrix);
  const index_t n = csr.rows();

  // The "new" format's raw arrays. For the demo we store the same
  // compressed structure under user-chosen names — the point is that the
  // compiler works from the SPEC, not from any built-in knowledge.
  relation::FormatArrays arrays;
  arrays.index_arrays["ROW_START"] = {csr.rowptr().begin(),
                                      csr.rowptr().end()};
  arrays.index_arrays["COLS"] = {csr.colind().begin(), csr.colind().end()};
  arrays.value_arrays["DATA"] = {csr.vals().begin(), csr.vals().end()};

  const std::string spec =
      "format Band {\n"
      "  level i: dense(" + std::to_string(n) + ");\n"
      "  level j: compressed(ptr=ROW_START, ind=COLS) sorted;\n"
      "  value DATA;\n"
      "}\n";
  std::cout << "=== user-supplied format specification ===\n" << spec << '\n';

  relation::GenericFormatView band(spec, arrays);

  Vector x(static_cast<std::size_t>(n), 1.0);
  Vector y(static_cast<std::size_t>(n), 0.0);
  compiler::Bindings bind;
  bind.bind_view("A", &band, {0, 1}, /*sparse=*/true);
  bind.bind_dense_vector("X", ConstVectorView(x));
  bind.bind_dense_vector("Y", VectorView(y));

  compiler::LoopNest matvec{
      {{"i", n}, {"j", n}},
      {{"Y", {"i"}}, {{"A", {"i", "j"}}, {"X", {"j"}}}, 1.0},
  };
  auto kernel = compiler::compile(matvec, bind);

  std::cout << "=== plan over the custom format ===\n"
            << kernel.describe_plan() << '\n'
            << "=== generated C (note the user's array names) ===\n"
            << kernel.emit("spmv_band") << '\n';

  kernel.run();
  Vector y_ref(static_cast<std::size_t>(n));
  formats::spmv(csr, x, y_ref);
  double err = 0;
  for (std::size_t i = 0; i < y.size(); ++i)
    err = std::max(err, std::abs(y[i] - y_ref[i]));
  std::cout << "max error vs reference kernel: " << err << '\n'
            << (err < 1e-12 ? "OK" : "MISMATCH") << '\n';
  return err < 1e-12 ? 0 : 1;
}
