// Parallel compilation demo (paper §3): the dense data-parallel program
// plus a distribution relation compiles into a per-rank inspector/executor
// pair. Shows the generated LOCAL program, the communication schedule the
// inspector computed, and a correctness check against the sequential
// product — the full "distributed query evaluation" story in one file.
#include <iostream>
#include <mutex>

#include "distrib/distribution.hpp"
#include "spmd/dist_compile.hpp"
#include "workloads/grid.hpp"

int main() {
  using namespace bernoulli;

  auto g = workloads::grid3d_7pt(8, 4, 4, 2, /*seed=*/17);
  formats::Csr a = formats::Csr::from_coo(g.matrix);
  const index_t n = a.rows();
  const int P = 4;
  distrib::BlockDist rows(n, P);
  std::cout << "global program:  DO i / DO j:  Y(i) += A(i,j) * X(j)\n"
            << "A: " << n << "x" << n << " (" << a.nnz()
            << " nnz), rows/X/Y block-distributed over " << P << " ranks\n\n";

  Vector x(static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < x.size(); ++i)
    x[i] = 1.0 + 0.01 * static_cast<double>(i % 23);
  Vector y_ref(static_cast<std::size_t>(n));
  formats::spmv(a, x, y_ref);

  Vector y(static_cast<std::size_t>(n), 0.0);
  std::string rank0_code, rank0_plan;
  index_t rank0_ghosts = 0;
  std::mutex mu;
  runtime::Machine machine(P);
  machine.run([&](runtime::Process& p) {
    spmd::DistKernel k = spmd::compile_dist_matvec(p, a, rows);
    auto mine = rows.owned_indices(p.rank());
    auto xo = k.x_owned();
    for (std::size_t i = 0; i < mine.size(); ++i)
      xo[i] = x[static_cast<std::size_t>(mine[i])];
    k.run(p, /*tag=*/1);
    auto yl = k.y_local();
    std::lock_guard<std::mutex> lk(mu);
    for (std::size_t i = 0; i < mine.size(); ++i)
      y[static_cast<std::size_t>(mine[i])] = yl[i];
    if (p.rank() == 0) {
      rank0_code = k.emit("node_program");
      rank0_plan = k.describe_plan();
      rank0_ghosts = k.schedule().ghosts;
    }
  });

  std::cout << "=== rank 0: inspector result ===\n"
            << "ghost values to fetch per product: " << rank0_ghosts << "\n\n"
            << "=== rank 0: local plan ===\n"
            << rank0_plan << '\n'
            << "=== rank 0: generated node program ===\n"
            << rank0_code << '\n';

  double err = 0;
  for (std::size_t i = 0; i < y.size(); ++i)
    err = std::max(err, std::abs(y[i] - y_ref[i]));
  std::cout << "max |distributed - sequential| = " << err << '\n'
            << (err < 1e-11 ? "OK" : "MISMATCH") << '\n';
  return err < 1e-11 ? 0 : 1;
}
