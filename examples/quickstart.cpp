// Quickstart: compile a dense matrix-vector loop against sparse storage.
//
// This walks the paper's core pipeline (§2): write the DENSE loop
//
//   DO i = 1, N
//     DO j = 1, N
//       Y(i) = Y(i) + A(i,j) * X(j)
//
// declare A sparse (CRS here), and let the compiler extract the relational
// query, compute the sparsity predicate, pick a join plan, EXPLAIN it, run
// it, and print the C code it would emit.
#include <iostream>

#include "compiler/loopnest.hpp"
#include "formats/csr.hpp"
#include "workloads/grid.hpp"

int main() {
  using namespace bernoulli;

  // A small SPD matrix from a 2-D grid problem.
  auto grid = workloads::grid2d_5pt(8, 8);
  formats::Csr a = formats::Csr::from_coo(grid.matrix);
  const auto n = static_cast<std::size_t>(a.rows());

  Vector x(n, 1.0), y(n, 0.0);

  // Bind the arrays of the dense program to storage.
  compiler::Bindings bindings;
  bindings.bind_csr("A", a);
  bindings.bind_dense_vector("X", ConstVectorView(x));
  bindings.bind_dense_vector("Y", VectorView(y));

  // The dense DOANY loop nest, exactly as in the paper's Section 2.
  compiler::LoopNest matvec{
      {{"i", a.rows()}, {"j", a.cols()}},
      {{"Y", {"i"}}, {{"A", {"i", "j"}}, {"X", {"j"}}}, 1.0},
  };

  compiler::CompiledKernel kernel = compiler::compile(matvec, bindings);

  std::cout << "=== chosen plan ===\n" << kernel.describe_plan() << '\n';
  std::cout << "=== EXPLAIN (why the planner chose it) ===\n"
            << kernel.explain() << '\n';
  std::cout << "=== generated C ===\n" << kernel.emit("spmv_csr") << '\n';

  kernel.run();  // y += A x through the plan interpreter

  // Cross-check against the format's tuned kernel.
  Vector y_ref(n);
  formats::spmv(a, x, y_ref);
  double max_err = 0;
  for (std::size_t i = 0; i < n; ++i)
    max_err = std::max(max_err, std::abs(y[i] - y_ref[i]));
  std::cout << "max |interpreted - kernel| = " << max_err << '\n';
  std::cout << (max_err < 1e-12 ? "OK" : "MISMATCH") << '\n';
  return max_err < 1e-12 ? 0 : 1;
}
