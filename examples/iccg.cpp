// ICCG: incomplete-Cholesky preconditioned CG — the paper's §6 extension
// direction (incomplete factorizations + triangular solves) exercised
// through the public solver API, compared against diagonal
// preconditioning on the same problem.
#include <iostream>

#include "solvers/cg.hpp"
#include "solvers/ic.hpp"
#include "support/rng.hpp"
#include "workloads/grid.hpp"

int main() {
  using namespace bernoulli;

  auto g = workloads::grid3d_7pt(12, 12, 12, 1, /*seed=*/23);
  formats::Csr a = formats::Csr::from_coo(g.matrix);
  const auto n = static_cast<std::size_t>(a.rows());
  std::cout << "3-D Poisson-like system: n = " << n << ", nnz = " << a.nnz()
            << "\n\n";

  SplitMix64 rng(1);
  Vector x_true(n);
  for (auto& v : x_true) v = rng.next_double(-1.0, 1.0);
  Vector b(n);
  formats::spmv(a, x_true, b);

  solvers::CgOptions opts;
  opts.max_iterations = 1000;
  opts.tolerance = 1e-12;

  Vector x1(n, 0.0);
  auto jacobi = solvers::cg(a, b, x1, opts);
  std::cout << "Jacobi-CG: " << jacobi.iterations << " iterations, ||r|| = "
            << jacobi.residual_norm << '\n';

  auto ic = solvers::IncompleteCholesky::factor(a);
  std::cout << "IC(0) factor: " << ic.lower().nnz()
            << " stored entries in L (no fill beyond A's lower pattern)\n";
  Vector x2(n, 0.0);
  auto iccg = solvers::cg_preconditioned(
      a, b, x2, [&](ConstVectorView r, VectorView z) { ic.apply(r, z); },
      opts);
  std::cout << "ICCG:      " << iccg.iterations << " iterations, ||r|| = "
            << iccg.residual_norm << '\n';

  double err = 0;
  for (std::size_t i = 0; i < n; ++i)
    err = std::max(err, std::abs(x2[i] - x_true[i]));
  std::cout << "max |x - x_true| = " << err << '\n';
  bool ok = jacobi.converged && iccg.converged &&
            iccg.iterations < jacobi.iterations && err < 1e-6;
  std::cout << (ok ? "OK" : "FAILED") << '\n';
  return ok ? 0 : 1;
}
