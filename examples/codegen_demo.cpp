// Codegen demo: the same dense program compiled against different storage
// formats produces different plans and different generated C — the
// extensibility story of the paper (§2.1): the compiler only sees access
// methods, so adding a format never changes the compilation algorithm.
#include <iostream>

#include "compiler/loopnest.hpp"
#include "formats/formats.hpp"
#include "formats/sparse_vector.hpp"
#include "support/rng.hpp"

int main() {
  using namespace bernoulli;

  SplitMix64 rng(11);
  formats::TripletBuilder b(6, 6);
  for (int k = 0; k < 14; ++k)
    b.add(rng.next_index(6), rng.next_index(6), rng.next_double(0.5, 1.5));
  formats::Coo coo = std::move(b).build();
  formats::Csr csr = formats::Csr::from_coo(coo);
  formats::Ccs ccs = formats::Ccs::from_coo(coo);

  Vector x(6, 1.0), y(6, 0.0);
  formats::SparseVector sx(6, {{1, 2.0}, {4, -1.0}});

  compiler::LoopNest matvec{
      {{"i", 6}, {"j", 6}},
      {{"Y", {"i"}}, {{"A", {"i", "j"}}, {"X", {"j"}}}, 1.0},
  };

  {
    std::cout << "=== A in CRS, X dense ===\n";
    compiler::Bindings bind;
    bind.bind_csr("A", csr);
    bind.bind_dense_vector("X", ConstVectorView(x));
    bind.bind_dense_vector("Y", VectorView(y));
    auto k = compiler::compile(matvec, bind);
    std::cout << k.describe_plan() << '\n' << k.emit("spmv_crs") << '\n';
  }
  {
    std::cout << "=== A in CCS, X dense (note the j-outer order: CCS can\n"
                 "    only reach rows through a column) ===\n";
    compiler::Bindings bind;
    bind.bind_ccs("A", ccs);
    bind.bind_dense_vector("X", ConstVectorView(x));
    bind.bind_dense_vector("Y", VectorView(y));
    auto k = compiler::compile(matvec, bind);
    std::cout << k.describe_plan() << '\n' << k.emit("spmv_ccs") << '\n';
  }
  {
    std::cout << "=== A in CRS, X sparse (sparsity predicate NZ(A) AND\n"
                 "    NZ(X); the planner merge-joins the sorted sets) ===\n";
    compiler::Bindings bind;
    bind.bind_csr("A", csr);
    bind.bind_sparse_vector("X", sx);
    bind.bind_dense_vector("Y", VectorView(y));
    auto k = compiler::compile(matvec, bind);
    std::cout << k.describe_plan() << '\n' << k.emit("spmv_sparse_x") << '\n';
  }
  {
    std::cout << "=== A in COO (row level is sorted but NOT dense: empty\n"
                 "    rows are skipped by enumeration) ===\n";
    compiler::Bindings bind;
    bind.bind_coo("A", coo);
    bind.bind_dense_vector("X", ConstVectorView(x));
    bind.bind_dense_vector("Y", VectorView(y));
    auto k = compiler::compile(matvec, bind);
    std::cout << k.describe_plan() << '\n' << k.emit("spmv_coo") << '\n';
  }
  return 0;
}
