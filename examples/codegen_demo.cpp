// Codegen demo: the same dense program compiled against different storage
// formats produces different plans and different generated C — the
// extensibility story of the paper (§2.1): the compiler only sees access
// methods, so adding a format never changes the compilation algorithm.
//
// Modes:
//   (default)        plan summary + generated C per binding
//   --explain        full EXPLAIN tree per binding (access-method
//                    properties and cost estimates the planner consumed)
//   --report=<file>  write a bernoulli.run.v1 run report: every plan's
//                    EXPLAIN in machine form, a cost-model check joining
//                    the planner's per-level estimates against measured
//                    interpreter counts, and the counter registry
//   --report=json    DEPRECATED alias: the PR-1 stdout JSON document
//                    (plans + counters, no model check)
//   --trace=<file>   record a Chrome trace of the compile+run work (plan /
//                    cost / execute / join spans on the host track) and
//                    write it to <file>; combines with any mode above
#include <cstring>
#include <iostream>

#include "analysis/model_check.hpp"
#include "analysis/report.hpp"
#include "compiler/executor.hpp"
#include "compiler/loopnest.hpp"
#include "formats/formats.hpp"
#include "formats/sparse_vector.hpp"
#include "support/counters.hpp"
#include "support/json_writer.hpp"
#include "support/rng.hpp"
#include "support/trace_cli.hpp"

namespace {

enum class Mode { kDefault, kExplain, kJson };

}  // namespace

int main(int argc, char** argv) {
  using namespace bernoulli;

  Mode mode = Mode::kDefault;
  support::ObsOptions obs;
  for (int i = 1; i < argc; ++i) {
    if (support::obs_parse_flag(argv[i], obs)) continue;
    if (std::strcmp(argv[i], "--explain") == 0) mode = Mode::kExplain;
  }
  // obs_parse_flag recognizes the deprecated `--report=json` spelling and
  // warns; it maps onto the old stdout document mode. An explicit
  // --report=<file> beats the alias in either flag order.
  if (obs.legacy_report_stdout()) mode = Mode::kJson;

  SplitMix64 rng(11);
  formats::TripletBuilder b(6, 6);
  for (int k = 0; k < 14; ++k)
    b.add(rng.next_index(6), rng.next_index(6), rng.next_double(0.5, 1.5));
  formats::Coo coo = std::move(b).build();
  formats::Csr csr = formats::Csr::from_coo(coo);
  formats::Ccs ccs = formats::Ccs::from_coo(coo);

  Vector x(6, 1.0), y(6, 0.0);
  formats::SparseVector sx(6, {{1, 2.0}, {4, -1.0}});

  compiler::LoopNest matvec{
      {{"i", 6}, {"j", 6}},
      {{"Y", {"i"}}, {{"A", {"i", "j"}}, {"X", {"j"}}}, 1.0},
  };

  struct Case {
    const char* title;
    const char* name;
    compiler::Bindings bind;
  };
  std::vector<Case> cases;
  {
    Case c{"=== A in CRS, X dense ===", "spmv_crs", {}};
    c.bind.bind_csr("A", csr);
    c.bind.bind_dense_vector("X", ConstVectorView(x));
    c.bind.bind_dense_vector("Y", VectorView(y));
    cases.push_back(std::move(c));
  }
  {
    Case c{"=== A in CCS, X dense (note the j-outer order: CCS can\n"
           "    only reach rows through a column) ===",
           "spmv_ccs",
           {}};
    c.bind.bind_ccs("A", ccs);
    c.bind.bind_dense_vector("X", ConstVectorView(x));
    c.bind.bind_dense_vector("Y", VectorView(y));
    cases.push_back(std::move(c));
  }
  {
    Case c{"=== A in CRS, X sparse (sparsity predicate NZ(A) AND\n"
           "    NZ(X); the planner merge-joins the sorted sets) ===",
           "spmv_sparse_x",
           {}};
    c.bind.bind_csr("A", csr);
    c.bind.bind_sparse_vector("X", sx);
    c.bind.bind_dense_vector("Y", VectorView(y));
    cases.push_back(std::move(c));
  }
  {
    Case c{"=== A in COO (row level is sorted but NOT dense: empty\n"
           "    rows are skipped by enumeration) ===",
           "spmv_coo",
           {}};
    c.bind.bind_coo("A", coo);
    c.bind.bind_dense_vector("X", ConstVectorView(x));
    c.bind.bind_dense_vector("Y", VectorView(y));
    cases.push_back(std::move(c));
  }

  support::obs_begin(obs);

  if (mode == Mode::kJson) {
    support::counters_reset();
    support::JsonWriter w(2);
    w.begin_object();
    w.key("schema").value("bernoulli.codegen_demo.report.v1");
    w.key("kernels").begin_array();
    for (auto& c : cases) {
      auto k = compiler::compile(matvec, c.bind);
      std::fill(y.begin(), y.end(), 0.0);
      k.run();
      w.begin_object();
      w.key("name").value(c.name);
      w.key("plan_text").value(k.explain());
      w.key("plan").raw(k.explain_json());
      w.end_object();
    }
    w.end_array();
    w.key("counters").raw(support::counters_json());
    w.end_object();
    std::cout << w.str() << "\n";
  } else {
    for (auto& c : cases) {
      std::cout << c.title << "\n";
      auto k = compiler::compile(matvec, c.bind);
      std::fill(y.begin(), y.end(), 0.0);
      if (!obs.trace_path.empty()) k.run();  // put execute spans on the track
      if (mode == Mode::kExplain)
        std::cout << k.explain() << '\n';
      else
        std::cout << k.describe_plan() << '\n' << k.emit(c.name) << '\n';
    }
  }

  if (!obs.report_path.empty()) {
    // Machine-form run report: one plan + model check per binding. The
    // interpreter's per-level counters are the "measured" side of the
    // cost-model validation; the demo is sequential, so there is no
    // critical path to attach.
    analysis::RunReport report("codegen_demo");
    report.config("matrix", "random 6x6, 14 nnz");
    report.config("kernels", static_cast<long long>(cases.size()));
    for (auto& c : cases) {
      auto k = compiler::compile(matvec, c.bind);
      std::fill(y.begin(), y.end(), 0.0);
      // compile() lays relations out as I=0, target=1, factors in order.
      compiler::Action act =
          compiler::multiply_accumulate(k.query(), /*target_rel=*/1, {2, 3});
      compiler::RunStats stats;
      compiler::execute_interpreted(k.plan(), k.query(), act, &stats);
      report.add_plan(c.name, k.explain_json());
      report.add_model_check(c.name, analysis::model_check(k.plan(), stats));
      report.metric(std::string("codegen.") + c.name + ".tuples",
                    static_cast<double>(stats.tuples));
    }
    report.write(obs.report_path);
  }

  // The demo is sequential — everything lands on the host track, and there
  // is zero communication to reconcile.
  support::obs_end(obs, /*commstats_messages=*/0, /*commstats_bytes=*/0);
  return 0;
}
