// Direct solver workflow (paper §6's "matrix factorizations (full ...)"):
// order with RCM to shrink the envelope, factor the skyline in place with
// envelope Cholesky, triangular-solve, and compare cost and accuracy with
// ICCG on the same problem.
#include <cmath>
#include <iostream>

#include "formats/skyline.hpp"
#include "solvers/cg.hpp"
#include "solvers/ic.hpp"
#include "support/rng.hpp"
#include "support/timer.hpp"
#include "workloads/grid.hpp"
#include "workloads/rcm.hpp"

int main() {
  using namespace bernoulli;

  auto g = workloads::grid2d_5pt(40, 40, 1, /*seed=*/3);
  formats::Coo a = g.matrix;
  const auto n = static_cast<std::size_t>(a.rows());
  std::cout << "2-D Poisson-like system: n = " << n << ", nnz = " << a.nnz()
            << "\n\n";

  SplitMix64 rng(1);
  Vector x_true(n);
  for (auto& v : x_true) v = rng.next_double(-1.0, 1.0);
  formats::Csr acsr = formats::Csr::from_coo(a);
  Vector b(n);
  formats::spmv(acsr, x_true, b);

  // --- direct: RCM + envelope Cholesky --------------------------------
  auto order = workloads::rcm_ordering(a);
  formats::Coo pa = workloads::permute_symmetric(a, order);
  formats::Skyline sky_natural = formats::Skyline::from_coo(a);
  formats::Skyline sky = formats::Skyline::from_coo(pa);
  std::cout << "envelope slots: natural ordering " << sky_natural.stored()
            << ", after RCM " << sky.stored() << '\n';

  Vector pb(n);
  std::vector<index_t> old_to_new(n);
  for (std::size_t k = 0; k < n; ++k)
    old_to_new[static_cast<std::size_t>(order[k])] = static_cast<index_t>(k);
  for (std::size_t i = 0; i < n; ++i)
    pb[static_cast<std::size_t>(old_to_new[i])] = b[i];

  WallTimer t_direct;
  sky.cholesky_in_place();
  Vector px(n);
  sky.solve_factored(pb, px);
  double direct_ms = t_direct.seconds() * 1e3;

  Vector x_direct(n);
  for (std::size_t i = 0; i < n; ++i)
    x_direct[i] = px[static_cast<std::size_t>(old_to_new[i])];
  double err_direct = 0;
  for (std::size_t i = 0; i < n; ++i)
    err_direct = std::max(err_direct, std::abs(x_direct[i] - x_true[i]));
  std::cout << "direct (factor + solve): " << direct_ms << " ms, max err "
            << err_direct << '\n';

  // --- iterative: ICCG --------------------------------------------------
  WallTimer t_iccg;
  auto ic = solvers::IncompleteCholesky::factor(acsr);
  Vector x_iccg(n, 0.0);
  solvers::CgOptions opts;
  opts.max_iterations = 2000;
  opts.tolerance = 1e-12;
  auto res = solvers::cg_preconditioned(
      acsr, b, x_iccg,
      [&](ConstVectorView r, VectorView z) { ic.apply(r, z); }, opts);
  double iccg_ms = t_iccg.seconds() * 1e3;
  double err_iccg = 0;
  for (std::size_t i = 0; i < n; ++i)
    err_iccg = std::max(err_iccg, std::abs(x_iccg[i] - x_true[i]));
  std::cout << "ICCG (" << res.iterations << " iterations): " << iccg_ms
            << " ms, max err " << err_iccg << '\n';

  bool ok = err_direct < 1e-8 && res.converged && err_iccg < 1e-6;
  std::cout << (ok ? "OK" : "FAILED") << '\n';
  return ok ? 0 : 1;
}
