// mm_tool: a small command-line utility a downstream user would reach for —
// reads a Matrix Market file, reports structural statistics, and races all
// storage formats' SpMV kernels on it (a per-matrix Table 1). With no
// argument it demonstrates itself on a generated matrix.
#include <algorithm>
#include <functional>
#include <iostream>

#include "formats/formats.hpp"
#include "mm/matrix_market.hpp"
#include "support/text_table.hpp"
#include "support/timer.hpp"
#include "workloads/stats.hpp"
#include "workloads/suite.hpp"

namespace {

using namespace bernoulli;

double best_seconds(const std::function<void()>& fn) {
  double best = 1e30, spent = 0;
  int reps = 0;
  while (reps < 3 || (spent < 0.05 && reps < 300)) {
    WallTimer t;
    fn();
    double s = t.seconds();
    best = std::min(best, s);
    spent += s;
    ++reps;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  formats::Coo a = [&] {
    if (argc > 1) {
      std::cout << "reading " << argv[1] << " ...\n";
      return mm::read_file(argv[1]);
    }
    std::cout << "no file given; demonstrating on the gr_30_30 analogue\n"
              << "usage: example_mm_tool <matrix.mtx>\n\n";
    return workloads::suite_matrix("gr_30_30").matrix;
  }();

  auto profile = workloads::profile_matrix(a);
  std::cout << "matrix: " << a.rows() << " x " << a.cols() << ", " << a.nnz()
            << " stored entries\n"
            << "  avg row: " << profile.avg_row
            << "  max row: " << profile.max_row
            << "  row cv: " << profile.row_cv << "\n"
            << "  diagonals: " << profile.num_diagonals
            << " (skyline fill " << profile.diagonal_fill << ")"
            << "  dof block: " << profile.dof_block << "  symmetric: "
            << (profile.structurally_symmetric ? "yes" : "no") << "\n";
  auto rec = workloads::recommend_format(profile);
  std::cout << "  recommended format: " << formats::kind_name(rec.kind)
            << " — " << rec.reason << "\n\n";

  Vector x(static_cast<std::size_t>(a.cols()), 1.0);
  Vector y(static_cast<std::size_t>(a.rows()), 0.0);

  TextTable table({"format", "SpMV MFLOPS", "storage KiB"});
  for (formats::Kind k : formats::sparse_kinds()) {
    formats::AnyFormat f(k, a);
    double secs = best_seconds([&] { f.spmv(x, y); });
    table.new_row();
    table.add(formats::kind_name(k));
    table.add(2.0 * static_cast<double>(a.nnz()) / secs / 1e6, 1);
    table.add(static_cast<double>(f.storage_bytes()) / 1024.0, 1);
  }
  std::cout << table.str();
  return 0;
}
