// FEM pipeline: the paper's headline application (§1 Fig. 2, §3.3, §4).
//
// Generates a 3-D 7-point-stencil problem with 5 degrees of freedom per
// discretization point (the paper's CG workload), runs the BlockSolve
// preprocessing — i-node detection, clique partition, contracted-graph
// coloring, color-major reordering — and solves A x = b with the
// distributed diagonally-preconditioned CG on the simulated machine.
#include <cmath>
#include <iostream>

#include "distrib/distribution.hpp"
#include "formats/blocksolve.hpp"
#include "solvers/dist_cg.hpp"
#include "spmd/matvec.hpp"
#include "workloads/bs_order.hpp"
#include "workloads/cliques.hpp"
#include "workloads/coloring.hpp"
#include "workloads/grid.hpp"
#include "workloads/inode.hpp"

int main() {
  using namespace bernoulli;

  const index_t dof = 5;
  auto grid = workloads::grid3d_7pt(8, 8, 8, dof, /*seed=*/7);
  std::cout << "grid: 8x8x8 points, " << dof << " dof/point -> "
            << grid.matrix.rows() << " unknowns, " << grid.matrix.nnz()
            << " nonzeros\n";

  // --- BlockSolve preprocessing (Fig. 2) --------------------------------
  workloads::NodeGraph ng = workloads::node_graph_from_matrix(grid.matrix, dof);
  auto cliques = workloads::clique_partition(ng, /*max_size=*/8);
  auto coloring = workloads::color_cliques(ng, cliques);
  std::cout << "node graph: " << ng.num_nodes << " nodes -> "
            << cliques.size() << " cliques, " << coloring.num_colors
            << " colors\n";

  formats::BsOrdering ord = workloads::blocksolve_ordering(grid.matrix, dof);
  formats::BsMatrix bs = formats::BsMatrix::build(grid.matrix, ord);
  std::cout << "BlockSolve storage: " << ord.cliques.size()
            << " dense diagonal blocks, " << bs.inodes().size()
            << " off-diagonal i-node blocks\n";

  // I-node structure of the permuted matrix: runs of rows with identical
  // column structure (Fig. 2(c)).
  formats::Coo permuted = bs.to_coo_permuted();
  auto inodes = workloads::find_inodes(formats::Csr::from_coo(permuted));
  double avg = static_cast<double>(permuted.rows()) /
               static_cast<double>(inodes.size());
  std::cout << "i-nodes in permuted matrix: " << inodes.size()
            << " (avg " << avg << " rows each; dof grouping -> expect ~"
            << dof << ")\n";

  // --- Distributed CG on the simulated machine --------------------------
  const int P = 8;
  formats::Csr a = formats::Csr::from_coo(permuted);
  distrib::RowRunsDist rows =
      distrib::rowruns_from_color_ptr(ord.color_ptr, a.rows(), P);

  Vector diag = solvers::extract_diagonal(a);
  Vector b(static_cast<std::size_t>(a.rows()), 1.0);
  Vector x(static_cast<std::size_t>(a.rows()), 0.0);

  runtime::Machine machine(P);
  std::vector<solvers::DistCgResult> results(P);
  std::mutex mu;
  machine.run([&](runtime::Process& p) {
    spmd::DistSpmv dist =
        spmd::build_dist_spmv(p, a, rows, spmd::Variant::kBlockSolve);
    auto mine = rows.owned_indices(p.rank());
    Vector bl(mine.size()), dl(mine.size()), xl(mine.size(), 0.0);
    for (std::size_t k = 0; k < mine.size(); ++k) {
      bl[k] = b[static_cast<std::size_t>(mine[k])];
      dl[k] = diag[static_cast<std::size_t>(mine[k])];
    }
    solvers::CgOptions opts;
    opts.max_iterations = 300;
    opts.tolerance = 1e-10;
    auto res = solvers::dist_cg(p, dist, dl, bl, xl, opts);
    std::lock_guard<std::mutex> lk(mu);
    results[static_cast<std::size_t>(p.rank())] = res;
    for (std::size_t k = 0; k < mine.size(); ++k)
      x[static_cast<std::size_t>(mine[k])] = xl[k];
  });

  std::cout << "distributed CG on " << P << " ranks: "
            << results[0].iterations << " iterations, ||r|| = "
            << results[0].residual_norm
            << (results[0].converged ? " (converged)" : " (NOT converged)")
            << '\n';

  // Verify the residual against the sequential matrix in the ORIGINAL
  // index space.
  Vector x_orig(x.size());
  for (std::size_t i = 0; i < x.size(); ++i)
    x_orig[static_cast<std::size_t>(ord.new_to_old[i])] = x[i];
  formats::Csr a_orig = formats::Csr::from_coo(grid.matrix);
  Vector ax(x.size());
  formats::spmv(a_orig, x_orig, ax);
  double rnorm = 0;
  for (std::size_t i = 0; i < ax.size(); ++i) {
    // b was permuted identically (all ones), so compare against 1.
    double r = 1.0 - ax[i];
    rnorm += r * r;
  }
  rnorm = std::sqrt(rnorm);
  std::cout << "residual re-checked sequentially: ||b - A x|| = " << rnorm
            << '\n';
  return results[0].converged && rnorm < 1e-6 ? 0 : 1;
}
