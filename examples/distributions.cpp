// Distribution explorer: the same distributed SpMV under every
// distribution-relation format the paper discusses (§3.1), showing how the
// distribution's STRUCTURE determines inspector communication.
#include <iostream>

#include "distrib/distribution.hpp"
#include "formats/csr.hpp"
#include "spmd/matvec.hpp"
#include "support/rng.hpp"
#include "support/text_table.hpp"
#include "workloads/grid.hpp"

int main() {
  using namespace bernoulli;

  auto grid = workloads::grid3d_7pt(16, 8, 8, 2, /*seed=*/5);
  formats::Csr a = formats::Csr::from_coo(grid.matrix);
  const index_t n = a.rows();
  const int P = 8;
  std::cout << "matrix: " << n << " rows, " << a.nnz() << " nonzeros, " << P
            << " ranks\n\n";

  // The distribution-relation formats of §3.1.
  distrib::BlockDist block(n, P);
  distrib::CyclicDist cyclic(n, P);
  std::vector<index_t> sizes(P, n / P);
  sizes[0] += n % P;
  distrib::GeneralizedBlockDist genblock(n, std::move(sizes));
  SplitMix64 rng(3);
  std::vector<int> map(static_cast<std::size_t>(n));
  for (auto& m : map) m = static_cast<int>(rng.next_below(P));
  distrib::IndirectDist indirect(map, P);
  std::vector<index_t> color_ptr{0, n / 2, n};
  distrib::RowRunsDist rowruns =
      distrib::rowruns_from_color_ptr(color_ptr, n, P);

  Vector x(static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < x.size(); ++i)
    x[i] = 1.0 + 0.01 * static_cast<double>(i % 31);
  Vector y_ref(static_cast<std::size_t>(n));
  formats::spmv(a, x, y_ref);

  TextTable table({"distribution", "ghosts(max)", "insp msgs", "insp bytes",
                   "result"});
  for (const distrib::Distribution* d :
       std::initializer_list<const distrib::Distribution*>{
           &block, &cyclic, &genblock, &indirect, &rowruns}) {
    runtime::Machine machine(P);
    std::vector<index_t> ghosts(P, 0);
    Vector y(static_cast<std::size_t>(n), 0.0);
    std::mutex mu;
    auto reports = machine.run([&](runtime::Process& p) {
      spmd::DistSpmv dist =
          spmd::build_dist_spmv(p, a, *d, spmd::Variant::kBernoulliMixed);
      ghosts[static_cast<std::size_t>(p.rank())] = dist.sched.ghosts;
      auto mine = d->owned_indices(p.rank());
      Vector x_full(static_cast<std::size_t>(dist.sched.full_size()), 0.0);
      for (std::size_t k = 0; k < mine.size(); ++k)
        x_full[k] = x[static_cast<std::size_t>(mine[k])];
      Vector yl(mine.size());
      dist.apply(p, x_full, yl, /*tag=*/2);
      std::lock_guard<std::mutex> lk(mu);
      for (std::size_t k = 0; k < mine.size(); ++k)
        y[static_cast<std::size_t>(mine[k])] = yl[k];
    });

    index_t max_ghosts = 0;
    long long msgs = 0, bytes = 0;
    for (int r = 0; r < P; ++r) {
      max_ghosts = std::max(max_ghosts, ghosts[static_cast<std::size_t>(r)]);
      msgs += reports[static_cast<std::size_t>(r)].stats.messages;
      bytes += reports[static_cast<std::size_t>(r)].stats.bytes;
    }
    double err = 0;
    for (std::size_t i = 0; i < y.size(); ++i)
      err = std::max(err, std::abs(y[i] - y_ref[i]));

    table.new_row();
    table.add(d->name());
    table.add(static_cast<long long>(max_ghosts));
    table.add(msgs);
    table.add(bytes);
    table.add(err < 1e-11 ? "OK" : "WRONG");
  }
  std::cout << table.str()
            << "\nStructure matters: contiguous distributions (block, "
               "generalized-block,\nrow-runs) keep ghosts near the slab "
               "surface; cyclic and random indirect\nmake almost every "
               "reference non-local.\n";
  return 0;
}
