// Regression tests for CompiledKernel's concurrency contract (PR 10,
// satellite: copy-during-run). A copy taken while another thread is
// mid-run() used to read the source's linked_ cache unsynchronized —
// a data race on the shared_ptr (ThreadSanitizer flags it) and, worse,
// a window where the copy observed the source's in-flux runner state.
// Now linked_ is only touched under its cache mutex, runs claim the
// cached program with an atomic in-use flag, and moves/assignments
// enforce an ownership check (active_runs() == 0) because they replace
// the storage an in-flight run borrows.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "compiler/loopnest.hpp"
#include "formats/formats.hpp"
#include "support/rng.hpp"

namespace bernoulli {
namespace {

formats::Csr random_csr(index_t rows, index_t cols, index_t nnz,
                        std::uint64_t seed) {
  SplitMix64 rng(seed);
  formats::TripletBuilder b(rows, cols);
  for (index_t k = 0; k < nnz; ++k)
    b.add(rng.next_index(rows), rng.next_index(cols),
          rng.next_double(-1.0, 1.0));
  return formats::Csr::from_coo(std::move(b).build());
}

compiler::CompiledKernel compile_spmv(compiler::Bindings& b,
                                      const formats::Csr& A,
                                      ConstVectorView x, VectorView y) {
  b.bind_csr("A", A);
  b.bind_dense_vector("x", x);
  b.bind_dense_vector("y", y);
  compiler::LoopNest nest;
  nest.loops = {{"i", A.rows()}, {"j", A.cols()}};
  nest.body.target = {"y", {"i"}};
  nest.body.factors = {{"A", {"i", "j"}}, {"x", {"j"}}};
  return compiler::compile(nest, b);
}

// y += A x in the engine's exact order and multiply chain (row-ascending,
// nonzero-ascending; prod = scale * A * x), so comparisons are bitwise.
void reference_spmv(const formats::Csr& A, const Vector& x, Vector& y) {
  const auto rowptr = A.rowptr();
  const auto colind = A.colind();
  const auto vals = A.vals();
  for (index_t i = 0; i < A.rows(); ++i) {
    for (index_t e = rowptr[static_cast<std::size_t>(i)];
         e < rowptr[static_cast<std::size_t>(i) + 1]; ++e) {
      value_t prod = 1.0;
      prod *= vals[static_cast<std::size_t>(e)];
      prod *= x[static_cast<std::size_t>(
          colind[static_cast<std::size_t>(e)])];
      y[static_cast<std::size_t>(i)] += prod;
    }
  }
}

TEST(KernelCopy, CopyRunsIndependentlyAndBitwiseEqual) {
  formats::Csr A = random_csr(50, 50, 400, 7);
  Vector x(50), y(50, 0.0);
  SplitMix64 rng(8);
  for (value_t& v : x) v = rng.next_double(-1.0, 1.0);
  compiler::Bindings b;
  const compiler::CompiledKernel k =
      compile_spmv(b, A, ConstVectorView(x), VectorView(y));
  k.run();  // prime the linked cache so the copy relinks eagerly
  Vector expect(50, 0.0);
  reference_spmv(A, x, expect);
  EXPECT_EQ(y, expect);

  const compiler::CompiledKernel copy = k;  // NOLINT: copy is the test
  std::fill(y.begin(), y.end(), 0.0);
  copy.run();
  EXPECT_EQ(y, expect);
  EXPECT_EQ(k.active_runs(), 0);
  EXPECT_EQ(copy.active_runs(), 0);
}

// The regression: one thread loops run() (lazily building and reusing
// the linked cache) while another thread takes copies of the same
// kernel. Pre-fix, the copy constructor read linked_ while run() wrote
// it — a shared_ptr data race. The copies must also be fully functional
// afterwards (linked against their OWN storage, not the source's).
TEST(KernelCopy, CopyWhileAnotherThreadRunsIsSafe) {
  formats::Csr A = random_csr(60, 60, 500, 9);
  Vector x(60), y(60, 0.0);
  SplitMix64 rng(10);
  for (value_t& v : x) v = rng.next_double(-1.0, 1.0);
  compiler::Bindings b;
  const compiler::CompiledKernel k =
      compile_spmv(b, A, ConstVectorView(x), VectorView(y));

  constexpr int kRuns = 300;
  std::atomic<bool> done{false};
  std::thread runner([&] {
    for (int i = 0; i < kRuns; ++i) k.run();
    done.store(true, std::memory_order_release);
  });

  std::vector<compiler::CompiledKernel> copies;
  int taken = 0;
  while (!done.load(std::memory_order_acquire)) {
    compiler::CompiledKernel c(k);
    ++taken;
    if (copies.size() < 4) copies.push_back(std::move(c));
  }
  runner.join();
  EXPECT_GT(taken, 0);
  EXPECT_EQ(k.active_runs(), 0);

  // The source accumulated kRuns sweeps into y; the copies, run serially
  // now, must produce the exact same increment (they borrow the same
  // views, so each run adds one more A*x into the shared target).
  Vector expect(60, 0.0);
  for (int i = 0; i < kRuns; ++i) reference_spmv(A, x, expect);
  EXPECT_EQ(y, expect);
  for (const compiler::CompiledKernel& c : copies) {
    reference_spmv(A, x, expect);
    c.run();
    EXPECT_EQ(y, expect);
  }
}

// Assignments and moves replace the storage a run borrows, so they carry
// the ownership check — and when the source was already linked, the
// destination relinks eagerly against its OWN storage (a stale cache
// pointing at the source's plan would dangle once the source dies).
TEST(KernelCopy, ReassignmentAndMoveRelinkAgainstOwnStorage) {
  formats::Csr A = random_csr(40, 40, 300, 11);
  Vector x(40), y(40, 0.0);
  SplitMix64 rng(12);
  for (value_t& v : x) v = rng.next_double(-1.0, 1.0);
  compiler::Bindings b;
  compiler::CompiledKernel k =
      compile_spmv(b, A, ConstVectorView(x), VectorView(y));
  k.run();  // prime the cache so assignment exercises the relink path
  Vector expect(40, 0.0);
  reference_spmv(A, x, expect);
  ASSERT_EQ(y, expect);

  compiler::CompiledKernel assigned;
  assigned = k;  // copy-assign over a default-constructed kernel
  std::fill(y.begin(), y.end(), 0.0);
  assigned.run();
  EXPECT_EQ(y, expect);

  compiler::CompiledKernel moved = std::move(k);  // move-construct
  std::fill(y.begin(), y.end(), 0.0);
  moved.run();
  EXPECT_EQ(y, expect);

  assigned = std::move(moved);  // move-assign over a linked kernel
  std::fill(y.begin(), y.end(), 0.0);
  assigned.run();
  EXPECT_EQ(y, expect);
  EXPECT_EQ(assigned.active_runs(), 0);
}

}  // namespace
}  // namespace bernoulli
