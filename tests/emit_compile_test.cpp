// The acid test for code generation: the emitted C program is compiled
// with the system C compiler, executed, and its output diffed against the
// plan interpreter.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include <map>

#include "compiler/emit_standalone.hpp"
#include "compiler/link.hpp"
#include "compiler/loopnest.hpp"
#include "compiler/specialize.hpp"
#include "formats/ccs.hpp"
#include "formats/csr.hpp"
#include "formats/sparse_vector.hpp"
#include "support/counters.hpp"
#include "support/histogram.hpp"
#include "support/rng.hpp"

namespace bernoulli::compiler {
namespace {

using formats::Coo;
using formats::Csr;
using formats::TripletBuilder;

// Compiles `program` with cc and returns its stdout lines as doubles;
// nullopt when no C compiler is available (test then skips).
std::optional<Vector> compile_and_run(const std::string& program,
                                      const std::string& tag) {
  std::string dir = ::testing::TempDir();
  std::string src = dir + "bernoulli_emit_" + tag + ".c";
  std::string bin = dir + "bernoulli_emit_" + tag + ".bin";
  {
    std::ofstream out(src);
    out << program;
  }
  std::string compile = "cc -O2 -o " + bin + " " + src + " 2>/dev/null";
  if (std::system(compile.c_str()) != 0) return std::nullopt;

  std::string run = bin + " > " + src + ".out";
  if (std::system(run.c_str()) != 0) return std::nullopt;

  Vector values;
  std::ifstream in(src + ".out");
  double v;
  while (in >> v) values.push_back(v);
  std::remove(src.c_str());
  std::remove(bin.c_str());
  std::remove((src + ".out").c_str());
  return values;
}

bool have_cc() {
  static int ok = -1;
  if (ok < 0) ok = std::system("cc --version > /dev/null 2>&1") == 0 ? 1 : 0;
  return ok == 1;
}

TEST(EmitCompile, CsrMatvecRunsAndMatchesInterpreter) {
  if (!have_cc()) GTEST_SKIP() << "no system C compiler";

  const index_t n = 18;
  SplitMix64 rng(1);
  TripletBuilder tb(n, n);
  for (int k = 0; k < 70; ++k)
    tb.add(rng.next_index(n), rng.next_index(n), rng.next_double(-1, 1));
  Coo coo = std::move(tb).build();
  Csr a = Csr::from_coo(coo);

  Vector x(static_cast<std::size_t>(n));
  for (auto& v : x) v = rng.next_double(-1, 1);
  Vector y(static_cast<std::size_t>(n), 0.0);

  Bindings b;
  b.bind_csr("A", a);
  b.bind_dense_vector("X", ConstVectorView(x));
  b.bind_dense_vector("Y", VectorView(y));
  LoopNest nest{{{"i", n}, {"j", n}},
                {{"Y", {"i"}}, {{"A", {"i", "j"}}, {"X", {"j"}}}, 1.0}};
  CompiledKernel k = compile(nest, b);
  k.run();  // interpreter fills y

  std::string program = emit_standalone_c(
      k.emit("spmv"), "spmv",
      {{"A_ROWPTR", {a.rowptr().begin(), a.rowptr().end()}},
       {"A_COLIND", {a.colind().begin(), a.colind().end()}}},
      {{"A_VALS", {a.vals().begin(), a.vals().end()}},
       {"X", x},
       {"Y", Vector(static_cast<std::size_t>(n), 0.0)}},
      "Y", static_cast<std::size_t>(n));

  auto got = compile_and_run(program, "csr");
  ASSERT_TRUE(got.has_value()) << "emitted program failed to build/run:\n"
                               << program;
  ASSERT_EQ(got->size(), y.size());
  for (std::size_t i = 0; i < y.size(); ++i)
    ASSERT_NEAR((*got)[i], y[i], 1e-14) << "row " << i;
}

TEST(EmitCompile, SparseVectorProbeRunsAndMatches) {
  if (!have_cc()) GTEST_SKIP() << "no system C compiler";

  const index_t n = 12;
  SplitMix64 rng(2);
  TripletBuilder tb(n, n);
  for (int k = 0; k < 40; ++k)
    tb.add(rng.next_index(n), rng.next_index(n), rng.next_double(-1, 1));
  Coo coo = std::move(tb).build();
  Csr a = Csr::from_coo(coo);
  formats::SparseVector x(n, {{1, 2.0}, {4, -1.5}, {9, 0.5}});
  Vector y(static_cast<std::size_t>(n), 0.0);

  Bindings b;
  b.bind_csr("A", a);
  b.bind_sparse_vector("X", x);
  b.bind_dense_vector("Y", VectorView(y));
  LoopNest nest{{{"i", n}, {"j", n}},
                {{"Y", {"i"}}, {{"A", {"i", "j"}}, {"X", {"j"}}}, 1.0}};
  // Merge joins emit a pseudo-C co-enumeration; force the probing plan,
  // which is fully compilable.
  PlannerOptions opts;
  opts.allow_merge = false;
  opts.force_order = std::vector<std::string>{"i", "j"};
  CompiledKernel k = compile(nest, b, opts);
  k.run();

  std::string program = emit_standalone_c(
      k.emit("spmv_sx"), "spmv_sx",
      {{"A_ROWPTR", {a.rowptr().begin(), a.rowptr().end()}},
       {"A_COLIND", {a.colind().begin(), a.colind().end()}},
       {"X_IND", {x.ind().begin(), x.ind().end()}}},
      {{"A_VALS", {a.vals().begin(), a.vals().end()}},
       {"X_VALS", {x.vals().begin(), x.vals().end()}},
       {"Y", Vector(static_cast<std::size_t>(n), 0.0)}},
      "Y", static_cast<std::size_t>(n));

  auto got = compile_and_run(program, "sx");
  ASSERT_TRUE(got.has_value()) << "emitted program failed to build/run:\n"
                               << program;
  ASSERT_EQ(got->size(), y.size());
  for (std::size_t i = 0; i < y.size(); ++i)
    ASSERT_NEAR((*got)[i], y[i], 1e-14) << "row " << i;
}

// ---- LinkedPlan emission round-trip ---------------------------------
// emit_linked_c → system cc → dlopen → run, diffed against the serial
// linked engine under the full observability contract: bitwise outputs,
// identical executor.* counter deltas, identical fan-out histogram
// deltas, identical per-level stats. This is the same reconciliation
// bench_table2_executor --engine=specialized --check enforces.

std::map<std::string, long long> exec_delta(
    const support::CountersSnapshot& before,
    const support::CountersSnapshot& after) {
  std::map<std::string, long long> d;
  for (const auto& [name, v] : after.counts) {
    if (name.rfind("executor.", 0) != 0) continue;
    long long b = 0;
    if (auto it = before.counts.find(name); it != before.counts.end())
      b = it->second;
    if (v != b) d[name] = v - b;
  }
  return d;
}

std::map<std::string, std::vector<long long>> fanout_delta(
    const std::map<std::string, std::vector<long long>>& before,
    const std::map<std::string, std::vector<long long>>& after) {
  std::map<std::string, std::vector<long long>> d;
  for (const auto& [name, buckets] : after) {
    if (name.rfind("executor.fanout.", 0) != 0) continue;
    std::vector<long long> delta = buckets;
    if (auto it = before.find(name); it != before.end())
      for (std::size_t i = 0; i < delta.size() && i < it->second.size(); ++i)
        delta[i] -= it->second[i];
    bool any = false;
    for (long long v : delta) any = any || v != 0;
    if (any) d[name] = std::move(delta);
  }
  return d;
}

void linked_roundtrip(bool use_ccs) {
  const index_t rows = 19, cols = 23;
  SplitMix64 rng(use_ccs ? 8 : 7);
  TripletBuilder tb(rows, cols);
  for (int k = 0; k < 110; ++k)
    tb.add(rng.next_index(rows), rng.next_index(cols),
           rng.next_double(-1, 1));
  Coo coo = std::move(tb).build();
  Csr csr = Csr::from_coo(coo);
  formats::Ccs ccs = formats::Ccs::from_coo(coo);

  Vector x(static_cast<std::size_t>(cols));
  for (auto& v : x) v = rng.next_double(-1, 1);
  Vector y(static_cast<std::size_t>(rows), 0.0);

  Bindings b;
  if (use_ccs)
    b.bind_ccs("A", ccs);
  else
    b.bind_csr("A", csr);
  b.bind_dense_vector("X", ConstVectorView(x));
  b.bind_dense_vector("Y", VectorView(y));
  LoopNest nest{{{"i", rows}, {"j", cols}},
                {{"Y", {"i"}}, {{"A", {"i", "j"}}, {"X", {"j"}}}, 1.0}};
  CompiledKernel k = compile(nest, b);

  LinkedPlan lp = link_plan(k.plan(), k.query());
  LinkedMac mac = link_mac(k.query(), 1, {2, 3});

  // Reference: serial linked engine.
  auto hb_ref = support::histograms_snapshot();
  auto cb_ref = support::counters_snapshot();
  RunStats ref_stats;
  LinkedRunner runner(link_plan(k.plan(), k.query()));
  runner.run(mac, &ref_stats);
  auto ref_delta = exec_delta(cb_ref, support::counters_snapshot());
  auto ref_fanout = fanout_delta(hb_ref, support::histograms_snapshot());
  Vector y_ref = y;

  // The kernel borrows lp and mac; both outlive it here.
  SpecializedKernel spec(lp, mac);
  if (!spec.ok())
    GTEST_SKIP() << "specialization unavailable: " << spec.note();
  EXPECT_NE(spec.source().find("bernoulli_specialized_kernel"),
            std::string::npos);

  std::fill(y.begin(), y.end(), 0.0);
  auto hb = support::histograms_snapshot();
  auto cb = support::counters_snapshot();
  RunStats spec_stats;
  spec.run(&spec_stats);
  EXPECT_EQ(ref_delta, exec_delta(cb, support::counters_snapshot()));
  EXPECT_EQ(ref_fanout, fanout_delta(hb, support::histograms_snapshot()));
  EXPECT_EQ(ref_stats.tuples, spec_stats.tuples);
  ASSERT_EQ(ref_stats.levels.size(), spec_stats.levels.size());
  for (std::size_t d = 0; d < ref_stats.levels.size(); ++d) {
    EXPECT_EQ(ref_stats.levels[d].enumerated, spec_stats.levels[d].enumerated)
        << "level " << d;
    EXPECT_EQ(ref_stats.levels[d].produced, spec_stats.levels[d].produced)
        << "level " << d;
  }
  for (std::size_t i = 0; i < y.size(); ++i)
    EXPECT_EQ(y[i], y_ref[i]) << "row " << i;  // bitwise

  // Repeat runs through the cached .so stay stable.
  std::fill(y.begin(), y.end(), 0.0);
  spec.run();
  for (std::size_t i = 0; i < y.size(); ++i) EXPECT_EQ(y[i], y_ref[i]);
}

TEST(LinkedEmission, CsrRoundTripMatchesLinkedEngine) {
  linked_roundtrip(/*use_ccs=*/false);
}

TEST(LinkedEmission, CcsRoundTripMatchesLinkedEngine) {
  linked_roundtrip(/*use_ccs=*/true);
}

}  // namespace
}  // namespace bernoulli::compiler
