// The acid test for code generation: the emitted C program is compiled
// with the system C compiler, executed, and its output diffed against the
// plan interpreter.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "compiler/emit_standalone.hpp"
#include "compiler/loopnest.hpp"
#include "formats/csr.hpp"
#include "formats/sparse_vector.hpp"
#include "support/rng.hpp"

namespace bernoulli::compiler {
namespace {

using formats::Coo;
using formats::Csr;
using formats::TripletBuilder;

// Compiles `program` with cc and returns its stdout lines as doubles;
// nullopt when no C compiler is available (test then skips).
std::optional<Vector> compile_and_run(const std::string& program,
                                      const std::string& tag) {
  std::string dir = ::testing::TempDir();
  std::string src = dir + "bernoulli_emit_" + tag + ".c";
  std::string bin = dir + "bernoulli_emit_" + tag + ".bin";
  {
    std::ofstream out(src);
    out << program;
  }
  std::string compile = "cc -O2 -o " + bin + " " + src + " 2>/dev/null";
  if (std::system(compile.c_str()) != 0) return std::nullopt;

  std::string run = bin + " > " + src + ".out";
  if (std::system(run.c_str()) != 0) return std::nullopt;

  Vector values;
  std::ifstream in(src + ".out");
  double v;
  while (in >> v) values.push_back(v);
  std::remove(src.c_str());
  std::remove(bin.c_str());
  std::remove((src + ".out").c_str());
  return values;
}

bool have_cc() {
  static int ok = -1;
  if (ok < 0) ok = std::system("cc --version > /dev/null 2>&1") == 0 ? 1 : 0;
  return ok == 1;
}

TEST(EmitCompile, CsrMatvecRunsAndMatchesInterpreter) {
  if (!have_cc()) GTEST_SKIP() << "no system C compiler";

  const index_t n = 18;
  SplitMix64 rng(1);
  TripletBuilder tb(n, n);
  for (int k = 0; k < 70; ++k)
    tb.add(rng.next_index(n), rng.next_index(n), rng.next_double(-1, 1));
  Coo coo = std::move(tb).build();
  Csr a = Csr::from_coo(coo);

  Vector x(static_cast<std::size_t>(n));
  for (auto& v : x) v = rng.next_double(-1, 1);
  Vector y(static_cast<std::size_t>(n), 0.0);

  Bindings b;
  b.bind_csr("A", a);
  b.bind_dense_vector("X", ConstVectorView(x));
  b.bind_dense_vector("Y", VectorView(y));
  LoopNest nest{{{"i", n}, {"j", n}},
                {{"Y", {"i"}}, {{"A", {"i", "j"}}, {"X", {"j"}}}, 1.0}};
  CompiledKernel k = compile(nest, b);
  k.run();  // interpreter fills y

  std::string program = emit_standalone_c(
      k.emit("spmv"), "spmv",
      {{"A_ROWPTR", {a.rowptr().begin(), a.rowptr().end()}},
       {"A_COLIND", {a.colind().begin(), a.colind().end()}}},
      {{"A_VALS", {a.vals().begin(), a.vals().end()}},
       {"X", x},
       {"Y", Vector(static_cast<std::size_t>(n), 0.0)}},
      "Y", static_cast<std::size_t>(n));

  auto got = compile_and_run(program, "csr");
  ASSERT_TRUE(got.has_value()) << "emitted program failed to build/run:\n"
                               << program;
  ASSERT_EQ(got->size(), y.size());
  for (std::size_t i = 0; i < y.size(); ++i)
    ASSERT_NEAR((*got)[i], y[i], 1e-14) << "row " << i;
}

TEST(EmitCompile, SparseVectorProbeRunsAndMatches) {
  if (!have_cc()) GTEST_SKIP() << "no system C compiler";

  const index_t n = 12;
  SplitMix64 rng(2);
  TripletBuilder tb(n, n);
  for (int k = 0; k < 40; ++k)
    tb.add(rng.next_index(n), rng.next_index(n), rng.next_double(-1, 1));
  Coo coo = std::move(tb).build();
  Csr a = Csr::from_coo(coo);
  formats::SparseVector x(n, {{1, 2.0}, {4, -1.5}, {9, 0.5}});
  Vector y(static_cast<std::size_t>(n), 0.0);

  Bindings b;
  b.bind_csr("A", a);
  b.bind_sparse_vector("X", x);
  b.bind_dense_vector("Y", VectorView(y));
  LoopNest nest{{{"i", n}, {"j", n}},
                {{"Y", {"i"}}, {{"A", {"i", "j"}}, {"X", {"j"}}}, 1.0}};
  // Merge joins emit a pseudo-C co-enumeration; force the probing plan,
  // which is fully compilable.
  PlannerOptions opts;
  opts.allow_merge = false;
  opts.force_order = std::vector<std::string>{"i", "j"};
  CompiledKernel k = compile(nest, b, opts);
  k.run();

  std::string program = emit_standalone_c(
      k.emit("spmv_sx"), "spmv_sx",
      {{"A_ROWPTR", {a.rowptr().begin(), a.rowptr().end()}},
       {"A_COLIND", {a.colind().begin(), a.colind().end()}},
       {"X_IND", {x.ind().begin(), x.ind().end()}}},
      {{"A_VALS", {a.vals().begin(), a.vals().end()}},
       {"X_VALS", {x.vals().begin(), x.vals().end()}},
       {"Y", Vector(static_cast<std::size_t>(n), 0.0)}},
      "Y", static_cast<std::size_t>(n));

  auto got = compile_and_run(program, "sx");
  ASSERT_TRUE(got.has_value()) << "emitted program failed to build/run:\n"
                               << program;
  ASSERT_EQ(got->size(), y.size());
  for (std::size_t i = 0; i < y.size(); ++i)
    ASSERT_NEAR((*got)[i], y[i], 1e-14) << "row " << i;
}

}  // namespace
}  // namespace bernoulli::compiler
