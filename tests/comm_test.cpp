// CommSchedule unit tests: exchange semantics, overlap split, validation.
#include <gtest/gtest.h>

#include "spmd/comm.hpp"
#include "support/counters.hpp"
#include "support/error.hpp"

namespace bernoulli::spmd {
namespace {

// Two ranks: rank 0 owns x[0..3), rank 1 owns x[3..6). Each needs one
// value from the other.
CommSchedule two_rank_schedule(int me) {
  CommSchedule s;
  s.nprocs = 2;
  s.owned = 3;
  s.ghosts = 1;
  s.send_local.assign(2, {});
  s.recv_count.assign(2, 0);
  s.ghost_base.assign(2, 0);
  int other = 1 - me;
  s.send_local[static_cast<std::size_t>(other)] = {me == 0 ? 2 : 0};
  s.recv_count[static_cast<std::size_t>(other)] = 1;
  s.ghost_base[static_cast<std::size_t>(other)] = 3;
  s.validate();
  return s;
}

TEST(CommSchedule, ExchangeFillsGhosts) {
  runtime::Machine machine(2);
  std::vector<Vector> xs(2);
  machine.run([&](runtime::Process& p) {
    CommSchedule s = two_rank_schedule(p.rank());
    Vector x_full{10.0 * p.rank() + 0, 10.0 * p.rank() + 1,
                  10.0 * p.rank() + 2, -1.0};
    s.exchange(p, x_full, 5);
    xs[static_cast<std::size_t>(p.rank())] = x_full;
  });
  EXPECT_DOUBLE_EQ(xs[0][3], 10.0);  // rank 1's local offset 0
  EXPECT_DOUBLE_EQ(xs[1][3], 2.0);   // rank 0's local offset 2
}

TEST(CommSchedule, PostCompleteSplitEquivalent) {
  runtime::Machine machine(2);
  std::vector<Vector> xs(2);
  machine.run([&](runtime::Process& p) {
    CommSchedule s = two_rank_schedule(p.rank());
    Vector x_full{1.0 + p.rank(), 2.0 + p.rank(), 3.0 + p.rank(), -1.0};
    s.post(p, x_full, 6);
    // ... compute would overlap here ...
    s.complete(p, x_full, 6);
    xs[static_cast<std::size_t>(p.rank())] = x_full;
  });
  EXPECT_DOUBLE_EQ(xs[0][3], 2.0);  // rank 1 local 0 = 1.0 + 1
  EXPECT_DOUBLE_EQ(xs[1][3], 3.0);  // rank 0 local 2 = 3.0 + 0
}

TEST(CommSchedule, ValidateCatchesBadLayout) {
  CommSchedule s = two_rank_schedule(0);
  s.ghosts = 2;  // recv counts sum to 1
  EXPECT_THROW(s.validate(), Error);

  CommSchedule t = two_rank_schedule(0);
  t.send_local[1] = {5};  // out of owned range
  EXPECT_THROW(t.validate(), Error);

  CommSchedule u = two_rank_schedule(0);
  u.ghost_base[1] = 1;  // overlaps owned region
  EXPECT_THROW(u.validate(), Error);
}

TEST(CommSchedule, EmptyScheduleNoMessages) {
  runtime::Machine machine(2);
  auto reports = machine.run([&](runtime::Process& p) {
    CommSchedule s;
    s.nprocs = 2;
    s.owned = 4;
    s.send_local.assign(2, {});
    s.recv_count.assign(2, 0);
    s.ghost_base.assign(2, 0);
    s.validate();
    Vector x_full(4, 1.0);
    s.exchange(p, x_full, 7);
  });
  EXPECT_EQ(reports[0].stats.messages, 0);
  EXPECT_EQ(reports[1].stats.messages, 0);
}

TEST(CommSchedule, RepeatedExchangesAreStable) {
  // An iterative executor reuses the schedule every iteration; values must
  // track the current x.
  runtime::Machine machine(2);
  std::vector<double> last(2, 0.0);
  machine.run([&](runtime::Process& p) {
    CommSchedule s = two_rank_schedule(p.rank());
    Vector x_full(4, 0.0);
    for (int iter = 0; iter < 5; ++iter) {
      for (int k = 0; k < 3; ++k)
        x_full[static_cast<std::size_t>(k)] = iter * 100.0 + p.rank() * 10 + k;
      s.exchange(p, x_full, 8);
    }
    last[static_cast<std::size_t>(p.rank())] = x_full[3];
  });
  EXPECT_DOUBLE_EQ(last[0], 400.0 + 10.0);  // iter 4, rank 1, local 0
  EXPECT_DOUBLE_EQ(last[1], 400.0 + 2.0);   // iter 4, rank 0, local 2
}

TEST(CommSchedule, ReverseExchangeReconcilesWithExchange) {
  // The scatter-add (reverse) direction walks the SAME send lists as the
  // gather direction, just transposed: every message an exchange sends,
  // reverse_exchange_add sends back. So on one schedule the two must book
  // identical message counts and identical byte totals — both in the
  // machine's CommStats and in the comm.* counter registry.
  support::counters_reset();

  runtime::Machine machine(2);
  auto fwd = machine.run([&](runtime::Process& p) {
    CommSchedule s = two_rank_schedule(p.rank());
    Vector x_full{1.0 * p.rank(), 2.0, 3.0, 0.0};
    s.exchange(p, x_full, 21);
  });
  auto fwd_snap = support::counters_snapshot();

  runtime::Machine machine2(2);
  auto rev = machine2.run([&](runtime::Process& p) {
    CommSchedule s = two_rank_schedule(p.rank());
    Vector x_full{0.0, 0.0, 0.0, 7.0 + p.rank()};
    s.reverse_exchange_add(p, x_full, 22);
  });
  auto rev_snap = support::counters_snapshot();

  long long fwd_msgs = fwd[0].stats.messages + fwd[1].stats.messages;
  long long fwd_bytes = fwd[0].stats.bytes + fwd[1].stats.bytes;
  long long rev_msgs = rev[0].stats.messages + rev[1].stats.messages;
  long long rev_bytes = rev[0].stats.bytes + rev[1].stats.bytes;
  EXPECT_EQ(fwd_msgs, rev_msgs);
  EXPECT_EQ(fwd_bytes, rev_bytes);
  EXPECT_GT(fwd_msgs, 0);

  // Counter registry view of the same runs (rank threads book under the
  // default "main" phase). fwd_snap holds the exchange only; the reverse
  // run's delta is rev_snap minus fwd_snap.
  EXPECT_EQ(fwd_snap.counts["comm.main.messages"], fwd_msgs);
  EXPECT_EQ(fwd_snap.counts["comm.main.bytes"], fwd_bytes);
  EXPECT_EQ(rev_snap.counts["comm.main.messages"] -
                fwd_snap.counts["comm.main.messages"],
            rev_msgs);
  EXPECT_EQ(rev_snap.counts["comm.main.bytes"] -
                fwd_snap.counts["comm.main.bytes"],
            rev_bytes);

  // Schedule-level operation counters.
  EXPECT_EQ(fwd_snap.counts["comm.main.exchanges"], 2);  // one per rank
  EXPECT_EQ(rev_snap.counts["comm.main.reverse_exchanges"], 2);
}

}  // namespace
}  // namespace bernoulli::spmd
