// CommSchedule unit tests: exchange semantics, overlap split, validation.
#include <gtest/gtest.h>

#include "spmd/comm.hpp"
#include "support/error.hpp"

namespace bernoulli::spmd {
namespace {

// Two ranks: rank 0 owns x[0..3), rank 1 owns x[3..6). Each needs one
// value from the other.
CommSchedule two_rank_schedule(int me) {
  CommSchedule s;
  s.nprocs = 2;
  s.owned = 3;
  s.ghosts = 1;
  s.send_local.assign(2, {});
  s.recv_count.assign(2, 0);
  s.ghost_base.assign(2, 0);
  int other = 1 - me;
  s.send_local[static_cast<std::size_t>(other)] = {me == 0 ? 2 : 0};
  s.recv_count[static_cast<std::size_t>(other)] = 1;
  s.ghost_base[static_cast<std::size_t>(other)] = 3;
  s.validate();
  return s;
}

TEST(CommSchedule, ExchangeFillsGhosts) {
  runtime::Machine machine(2);
  std::vector<Vector> xs(2);
  machine.run([&](runtime::Process& p) {
    CommSchedule s = two_rank_schedule(p.rank());
    Vector x_full{10.0 * p.rank() + 0, 10.0 * p.rank() + 1,
                  10.0 * p.rank() + 2, -1.0};
    s.exchange(p, x_full, 5);
    xs[static_cast<std::size_t>(p.rank())] = x_full;
  });
  EXPECT_DOUBLE_EQ(xs[0][3], 10.0);  // rank 1's local offset 0
  EXPECT_DOUBLE_EQ(xs[1][3], 2.0);   // rank 0's local offset 2
}

TEST(CommSchedule, PostCompleteSplitEquivalent) {
  runtime::Machine machine(2);
  std::vector<Vector> xs(2);
  machine.run([&](runtime::Process& p) {
    CommSchedule s = two_rank_schedule(p.rank());
    Vector x_full{1.0 + p.rank(), 2.0 + p.rank(), 3.0 + p.rank(), -1.0};
    s.post(p, x_full, 6);
    // ... compute would overlap here ...
    s.complete(p, x_full, 6);
    xs[static_cast<std::size_t>(p.rank())] = x_full;
  });
  EXPECT_DOUBLE_EQ(xs[0][3], 2.0);  // rank 1 local 0 = 1.0 + 1
  EXPECT_DOUBLE_EQ(xs[1][3], 3.0);  // rank 0 local 2 = 3.0 + 0
}

TEST(CommSchedule, ValidateCatchesBadLayout) {
  CommSchedule s = two_rank_schedule(0);
  s.ghosts = 2;  // recv counts sum to 1
  EXPECT_THROW(s.validate(), Error);

  CommSchedule t = two_rank_schedule(0);
  t.send_local[1] = {5};  // out of owned range
  EXPECT_THROW(t.validate(), Error);

  CommSchedule u = two_rank_schedule(0);
  u.ghost_base[1] = 1;  // overlaps owned region
  EXPECT_THROW(u.validate(), Error);
}

TEST(CommSchedule, EmptyScheduleNoMessages) {
  runtime::Machine machine(2);
  auto reports = machine.run([&](runtime::Process& p) {
    CommSchedule s;
    s.nprocs = 2;
    s.owned = 4;
    s.send_local.assign(2, {});
    s.recv_count.assign(2, 0);
    s.ghost_base.assign(2, 0);
    s.validate();
    Vector x_full(4, 1.0);
    s.exchange(p, x_full, 7);
  });
  EXPECT_EQ(reports[0].stats.messages, 0);
  EXPECT_EQ(reports[1].stats.messages, 0);
}

TEST(CommSchedule, RepeatedExchangesAreStable) {
  // An iterative executor reuses the schedule every iteration; values must
  // track the current x.
  runtime::Machine machine(2);
  std::vector<double> last(2, 0.0);
  machine.run([&](runtime::Process& p) {
    CommSchedule s = two_rank_schedule(p.rank());
    Vector x_full(4, 0.0);
    for (int iter = 0; iter < 5; ++iter) {
      for (int k = 0; k < 3; ++k)
        x_full[static_cast<std::size_t>(k)] = iter * 100.0 + p.rank() * 10 + k;
      s.exchange(p, x_full, 8);
    }
    last[static_cast<std::size_t>(p.rank())] = x_full[3];
  });
  EXPECT_DOUBLE_EQ(last[0], 400.0 + 10.0);  // iter 4, rank 1, local 0
  EXPECT_DOUBLE_EQ(last[1], 400.0 + 2.0);   // iter 4, rank 0, local 2
}

}  // namespace
}  // namespace bernoulli::spmd
