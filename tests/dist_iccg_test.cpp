// Distributed block-IC preconditioned CG: each rank factors its local
// diagonal block (the BlockSolve pattern). Must converge to the true
// solution and beat diagonal preconditioning in iteration count.
#include <gtest/gtest.h>

#include "distrib/distribution.hpp"
#include "solvers/dist_cg.hpp"
#include "solvers/ic.hpp"
#include "support/rng.hpp"
#include "workloads/grid.hpp"

namespace bernoulli::solvers {
namespace {

using distrib::BlockDist;
using formats::Csr;

TEST(DistIccg, BlockIcBeatsJacobi) {
  auto g = workloads::grid3d_7pt(6, 6, 6, 1, 71);
  Csr a = Csr::from_coo(g.matrix);
  const auto n = static_cast<std::size_t>(a.rows());
  SplitMix64 rng(1);
  Vector x_true(n);
  for (auto& v : x_true) v = rng.next_double(-1, 1);
  Vector b(n);
  formats::spmv(a, x_true, b);

  const int P = 4;
  BlockDist rows(a.rows(), P);
  Vector diag = extract_diagonal(a);

  CgOptions opts;
  opts.max_iterations = 500;
  opts.tolerance = 1e-11;

  std::vector<int> jacobi_iters(P), ic_iters(P);
  Vector x_ic(n, 0.0);
  std::mutex mu;
  runtime::Machine machine(P);
  machine.run([&](runtime::Process& p) {
    spmd::DistSpmv dist =
        spmd::build_dist_spmv(p, a, rows, spmd::Variant::kBlockSolve);
    auto mine = rows.owned_indices(p.rank());
    Vector bl(mine.size()), dl(mine.size());
    for (std::size_t k = 0; k < mine.size(); ++k) {
      bl[k] = b[static_cast<std::size_t>(mine[k])];
      dl[k] = diag[static_cast<std::size_t>(mine[k])];
    }

    Vector x1(mine.size(), 0.0);
    auto jac = dist_cg(p, dist, dl, bl, x1, opts);
    EXPECT_TRUE(jac.converged);

    // Block-Jacobi IC(0): factor the LOCAL diagonal block (a_local is the
    // owned-column part of the fragment, exactly that block).
    auto ic = IncompleteCholesky::factor(dist.a_local);
    Vector x2(mine.size(), 0.0);
    auto iccg = dist_cg_preconditioned(
        p, dist,
        [&](ConstVectorView r, VectorView z) { ic.apply(r, z); }, bl, x2,
        opts);
    EXPECT_TRUE(iccg.converged);

    std::lock_guard<std::mutex> lk(mu);
    jacobi_iters[static_cast<std::size_t>(p.rank())] = jac.iterations;
    ic_iters[static_cast<std::size_t>(p.rank())] = iccg.iterations;
    for (std::size_t k = 0; k < mine.size(); ++k)
      x_ic[static_cast<std::size_t>(mine[k])] = x2[k];
  });

  // All ranks agree on the counts (lockstep algorithm).
  for (int r = 1; r < P; ++r) {
    EXPECT_EQ(jacobi_iters[static_cast<std::size_t>(r)], jacobi_iters[0]);
    EXPECT_EQ(ic_iters[static_cast<std::size_t>(r)], ic_iters[0]);
  }
  EXPECT_LT(ic_iters[0], jacobi_iters[0]);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x_ic[i], x_true[i], 1e-6);
}

TEST(DistIccg, SingleRankBlockIcEqualsSequentialIccg) {
  auto g = workloads::grid2d_5pt(10, 10, 1, 72);
  Csr a = Csr::from_coo(g.matrix);
  const auto n = static_cast<std::size_t>(a.rows());
  Vector b(n, 1.0);

  CgOptions opts;
  opts.max_iterations = 300;
  opts.tolerance = 1e-11;

  auto ic_seq = IncompleteCholesky::factor(a);
  Vector x_seq(n, 0.0);
  auto seq = cg_preconditioned(
      a, b, x_seq,
      [&](ConstVectorView r, VectorView z) { ic_seq.apply(r, z); }, opts);

  BlockDist rows(a.rows(), 1);
  runtime::Machine machine(1);
  machine.run([&](runtime::Process& p) {
    spmd::DistSpmv dist =
        spmd::build_dist_spmv(p, a, rows, spmd::Variant::kBernoulliMixed);
    auto ic = IncompleteCholesky::factor(dist.a_local);
    Vector x(n, 0.0);
    auto res = dist_cg_preconditioned(
        p, dist, [&](ConstVectorView r, VectorView z) { ic.apply(r, z); }, b,
        x, opts);
    EXPECT_EQ(res.iterations, seq.iterations);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_seq[i], 1e-9);
  });
}

}  // namespace
}  // namespace bernoulli::solvers
