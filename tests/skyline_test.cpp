// Skyline storage and envelope Cholesky: the full (direct) factorization
// of the paper's §6, with the no-fill-outside-the-envelope property.
#include <gtest/gtest.h>

#include <cmath>

#include "formats/dense.hpp"
#include "formats/csr.hpp"
#include "formats/skyline.hpp"
#include "solvers/cg.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "workloads/grid.hpp"
#include "workloads/rcm.hpp"
#include "workloads/suite.hpp"

namespace bernoulli::formats {
namespace {

TEST(Skyline, RoundTripsSymmetricMatrix) {
  auto g = workloads::grid2d_5pt(6, 5, 1, 1);
  Skyline s = Skyline::from_coo(g.matrix);
  EXPECT_EQ(s.to_coo(), g.matrix);
}

TEST(Skyline, SymmetricSpmvMatchesDense) {
  auto g = workloads::grid2d_5pt(7, 7, 1, 2);
  Skyline s = Skyline::from_coo(g.matrix);
  Dense d = Dense::from_coo(g.matrix);
  const auto n = static_cast<std::size_t>(g.matrix.rows());
  SplitMix64 rng(3);
  Vector x(n), y(n), y_ref(n);
  for (auto& v : x) v = rng.next_double(-1, 1);
  spmv(d, x, y_ref);
  s.spmv_sym(x, y);
  for (std::size_t i = 0; i < n; ++i) ASSERT_NEAR(y[i], y_ref[i], 1e-12);
}

TEST(Skyline, CholeskyReconstructsMatrix) {
  auto g = workloads::grid2d_5pt(5, 5, 1, 4);
  Skyline s = Skyline::from_coo(g.matrix);
  Skyline factored = s;
  factored.cholesky_in_place();

  // L L^T must equal A entrywise (within the envelope L is exact; outside
  // it both are structurally zero for envelope matrices).
  const index_t n = s.rows();
  Dense a = Dense::from_coo(g.matrix);
  for (index_t i = 0; i < n; ++i)
    for (index_t j = 0; j <= i; ++j) {
      value_t sum = 0;
      for (index_t k = 0; k <= j; ++k) {
        value_t lik = k >= factored.first(i) ? factored.at(i, k) : 0.0;
        value_t ljk = k >= factored.first(j) ? factored.at(j, k) : 0.0;
        sum += lik * ljk;
      }
      ASSERT_NEAR(sum, a.at(i, j), 1e-10) << i << "," << j;
    }
}

TEST(Skyline, DirectSolveMatchesTruth) {
  auto g = workloads::grid3d_7pt(4, 4, 4, 1, 5);
  Skyline s = Skyline::from_coo(g.matrix);
  const auto n = static_cast<std::size_t>(s.rows());
  SplitMix64 rng(6);
  Vector x_true(n);
  for (auto& v : x_true) v = rng.next_double(-1, 1);
  Vector b(n);
  s.spmv_sym(x_true, b);

  s.cholesky_in_place();
  Vector x(n);
  s.solve_factored(b, x);
  for (std::size_t i = 0; i < n; ++i) ASSERT_NEAR(x[i], x_true[i], 1e-9);
}

TEST(Skyline, RcmShrinksEnvelopeAndFactorCost) {
  // The direct-method payoff of RCM: envelope (= factor storage and
  // factor work) shrinks on a scrambled matrix.
  formats::Coo grid = workloads::suite_matrix("gr_30_30").matrix;
  SplitMix64 rng(7);
  std::vector<index_t> shuffle(static_cast<std::size_t>(grid.rows()));
  for (std::size_t i = 0; i < shuffle.size(); ++i)
    shuffle[i] = static_cast<index_t>(i);
  for (std::size_t i = shuffle.size(); i > 1; --i)
    std::swap(shuffle[i - 1], shuffle[rng.next_below(i)]);
  formats::Coo scrambled = workloads::permute_symmetric(grid, shuffle);
  formats::Coo restored = workloads::permute_symmetric(
      scrambled, workloads::rcm_ordering(scrambled));

  Skyline bad = Skyline::from_coo(scrambled);
  Skyline good = Skyline::from_coo(restored);
  EXPECT_LT(good.stored(), bad.stored() / 3)
      << "scrambled " << bad.stored() << " restored " << good.stored();
}

TEST(Skyline, BreakdownOnIndefinite) {
  TripletBuilder b(2, 2);
  b.add(0, 0, 1.0);
  b.add(1, 0, 5.0);
  b.add(0, 1, 5.0);
  b.add(1, 1, 1.0);
  Skyline s = Skyline::from_coo(std::move(b).build());
  EXPECT_THROW(s.cholesky_in_place(), Error);
}

TEST(Skyline, AgreesWithCg) {
  auto g = workloads::grid2d_5pt(8, 6, 1, 8);
  Csr a = Csr::from_coo(g.matrix);
  const auto n = static_cast<std::size_t>(a.rows());
  Vector b(n, 1.0);

  Vector x_cg(n, 0.0);
  solvers::CgOptions opts;
  opts.max_iterations = 1000;
  opts.tolerance = 1e-13;
  ASSERT_TRUE(solvers::cg(a, b, x_cg, opts).converged);

  Skyline s = Skyline::from_coo(g.matrix);
  s.cholesky_in_place();
  Vector x_direct(n);
  s.solve_factored(b, x_direct);
  for (std::size_t i = 0; i < n; ++i) ASSERT_NEAR(x_direct[i], x_cg[i], 1e-7);
}

}  // namespace
}  // namespace bernoulli::formats
