// ThreadPool semantics, including the re-entrancy regression from the
// serving work: run_slots invoked FROM a pool worker used to deadlock
// (the nested call queued on job_mu while the outer job waited for that
// very worker). The fix detects the case with a thread-local flag and
// runs the nested slots inline on the caller, so these tests terminate
// instead of hanging.
#include "support/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

namespace support = bernoulli::support;

TEST(ThreadPoolTest, RunsEverySlotExactlyOnce) {
  support::ThreadPool pool(3);
  constexpr int kSlots = 17;
  std::vector<std::atomic<int>> hits(kSlots);
  pool.run_slots(kSlots, [&](int slot) { hits[slot].fetch_add(1); });
  for (int i = 0; i < kSlots; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPoolTest, OnPoolThreadFlagTracksWorkers) {
  support::ThreadPool pool(2);
  EXPECT_FALSE(support::ThreadPool::on_pool_thread());
  std::atomic<int> inside{0};
  pool.run_slots(4, [&](int) {
    if (support::ThreadPool::on_pool_thread()) inside.fetch_add(1);
  });
  EXPECT_EQ(inside.load(), 4);
  EXPECT_FALSE(support::ThreadPool::on_pool_thread());
}

// Regression (PR 10): before the inline fallback this test hung forever —
// slot 0's nested run_slots blocked on the pool's job mutex, which the
// outer job holds until slot 0 returns.
TEST(ThreadPoolTest, NestedRunSlotsFromWorkerRunsInline) {
  support::ThreadPool& pool = support::shared_pool(2);
  std::atomic<int> inner_hits{0};
  std::atomic<int> outer_hits{0};
  pool.run_slots(2, [&](int slot) {
    outer_hits.fetch_add(1);
    if (slot == 0) {
      std::set<std::thread::id> inner_threads;
      const std::thread::id self = std::this_thread::get_id();
      pool.run_slots(3, [&](int) {
        inner_hits.fetch_add(1);
        inner_threads.insert(std::this_thread::get_id());
      });
      // Inline degradation: every nested slot ran on the calling worker.
      EXPECT_EQ(inner_threads.size(), 1u);
      EXPECT_EQ(*inner_threads.begin(), self);
    }
  });
  EXPECT_EQ(outer_hits.load(), 2);
  EXPECT_EQ(inner_hits.load(), 3);
}

// Deeper nesting (a parallel engine run inside a server request inside a
// bench client slot) must also terminate.
TEST(ThreadPoolTest, DoublyNestedRunSlotsTerminates) {
  support::ThreadPool& pool = support::shared_pool(2);
  std::atomic<int> leaf_hits{0};
  pool.run_slots(2, [&](int) {
    pool.run_slots(2, [&](int) {
      pool.run_slots(2, [&](int) { leaf_hits.fetch_add(1); });
    });
  });
  EXPECT_EQ(leaf_hits.load(), 2 * 2 * 2);
}

TEST(ThreadPoolTest, NestedExceptionPropagatesThroughInlinePath) {
  support::ThreadPool& pool = support::shared_pool(2);
  std::atomic<int> ran{0};
  EXPECT_THROW(
      pool.run_slots(2,
                     [&](int slot) {
                       if (slot == 0) {
                         pool.run_slots(2, [&](int inner) {
                           ran.fetch_add(1);
                           if (inner == 1) throw std::runtime_error("boom");
                         });
                       } else {
                         ran.fetch_add(1);
                       }
                     }),
      std::runtime_error);
  // The inline path still runs the remaining slots before rethrowing.
  EXPECT_EQ(ran.load(), 3);
}
