// Sparse-accumulator output: sparse-times-sparse products through the
// compiler with a SPARSE result whose structure is discovered (fill-in)
// during execution.
#include <gtest/gtest.h>

#include "blas/spgemm.hpp"
#include "compiler/executor.hpp"
#include "compiler/planner.hpp"
#include "formats/csr.hpp"
#include "relation/array_views.hpp"
#include "relation/spa_view.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace bernoulli::relation {
namespace {

using formats::Coo;
using formats::Csr;
using formats::TripletBuilder;

Coo random_matrix(index_t rows, index_t cols, index_t nnz, std::uint64_t seed) {
  SplitMix64 rng(seed);
  TripletBuilder b(rows, cols);
  for (index_t k = 0; k < nnz; ++k)
    b.add(rng.next_index(rows), rng.next_index(cols),
          rng.next_double(-1.0, 1.0));
  return std::move(b).build();
}

TEST(Spa, InsertOnMissAndHarvest) {
  SpaView c("C", 4, 5);
  EXPECT_EQ(c.nnz(), 0);
  EXPECT_EQ(c.level(1).search(2, 3), -1);
  auto& col = const_cast<IndexLevel&>(c.level(1));
  index_t p = col.insert(2, 3);
  EXPECT_EQ(c.level(1).search(2, 3), p);
  c.value_add(p, 1.5);
  c.value_add(p, 2.0);
  index_t q = col.insert(0, 4);
  c.value_set(q, -1.0);
  Coo out = c.harvest();
  EXPECT_EQ(out.nnz(), 2);
  EXPECT_DOUBLE_EQ(out.at(2, 3), 3.5);
  EXPECT_DOUBLE_EQ(out.at(0, 4), -1.0);
  c.clear();
  EXPECT_EQ(c.nnz(), 0);
  EXPECT_EQ(c.level(1).search(2, 3), -1);
}

TEST(Spa, SparseSpGemmThroughCompiler) {
  // C(i,j) += A(i,k) * B(k,j) with sparse A, B and a SPA C: result must
  // equal the Gustavson kernel, structure included.
  Coo a = random_matrix(14, 18, 60, 1);
  Coo b = random_matrix(18, 11, 55, 2);
  Csr acsr = Csr::from_coo(a);
  Csr bcsr = Csr::from_coo(b);

  CsrView aview("A", acsr);
  CsrView bview("B", bcsr);
  SpaView cview("C", 14, 11);
  IntervalView iview("I", {14, 18, 11});

  Query q;
  q.vars = {"i", "k", "j"};
  q.relations.push_back({&iview, {"i", "k", "j"}, true, false, true});
  q.relations.push_back({&aview, {"i", "k"}, true, false, false});
  q.relations.push_back({&bview, {"k", "j"}, true, false, false});
  q.relations.push_back({&cview, {"i", "j"}, false, true, false});

  compiler::Plan plan = compiler::plan_query(q);
  compiler::execute(plan, q, compiler::multiply_accumulate(q, 3, {1, 2}));

  Csr ref = blas::spgemm(acsr, bcsr);
  Coo got = cview.harvest();
  EXPECT_EQ(got, ref.to_coo());  // values AND structure
}

TEST(Spa, ReusableAcrossRuns) {
  Coo a = random_matrix(6, 6, 12, 3);
  Csr acsr = Csr::from_coo(a);
  CsrView aview("A", acsr);
  SpaView cview("C", 6, 6);
  IntervalView iview("I", {6, 6});

  // C(i,j) += A(i,j): copies A's structure into the SPA.
  Query q;
  q.vars = {"i", "j"};
  q.relations.push_back({&iview, {"i", "j"}, true, false, true});
  q.relations.push_back({&aview, {"i", "j"}, true, false, false});
  q.relations.push_back({&cview, {"i", "j"}, false, true, false});
  compiler::Plan plan = compiler::plan_query(q);

  compiler::execute(plan, q, compiler::multiply_accumulate(q, 2, {1}));
  EXPECT_EQ(cview.harvest(), a);

  // Second run without clear(): values double, structure unchanged.
  compiler::execute(plan, q, compiler::multiply_accumulate(q, 2, {1}));
  Coo doubled = cview.harvest();
  EXPECT_EQ(doubled.nnz(), a.nnz());
  for (index_t k = 0; k < a.nnz(); ++k)
    EXPECT_DOUBLE_EQ(doubled.vals()[static_cast<std::size_t>(k)],
                     2.0 * a.vals()[static_cast<std::size_t>(k)]);

  cview.clear();
  compiler::execute(plan, q, compiler::multiply_accumulate(q, 2, {1}));
  EXPECT_EQ(cview.harvest(), a);
}

TEST(Spa, NonInsertableMissStillErrors) {
  // A written DENSE vector that cannot cover the index space must still
  // fail loudly (no silent skips).
  Vector y(2, 0.0);
  DenseVectorView yview("Y", VectorView(y));
  IntervalView iview("I", {4});
  Query q;
  q.vars = {"i"};
  q.relations.push_back({&iview, {"i"}, true, false, true});
  q.relations.push_back({&yview, {"i"}, false, true, false});
  compiler::Plan plan = compiler::plan_query(q);
  Vector x(4, 1.0);
  DenseVectorView xview("X", ConstVectorView(x));
  q.relations.push_back({&xview, {"i"}, false, false, false});
  plan = compiler::plan_query(q);
  EXPECT_THROW(
      compiler::execute(plan, q, compiler::multiply_accumulate(q, 1, {2})),
      bernoulli::Error);
}

}  // namespace
}  // namespace bernoulli::relation
