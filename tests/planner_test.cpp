// Planner unit tests: feasibility of variable orders, cost-model
// preferences, merge policy, and order-free (iteration-space) relations.
#include <gtest/gtest.h>

#include "compiler/planner.hpp"
#include "formats/ccs.hpp"
#include "formats/csr.hpp"
#include "formats/sparse_vector.hpp"
#include "relation/array_views.hpp"
#include "relation/sparse_vector_view.hpp"
#include "support/rng.hpp"

namespace bernoulli::compiler {
namespace {

using formats::Ccs;
using formats::Coo;
using formats::Csr;
using formats::TripletBuilder;
using relation::Query;

Coo sample(index_t n, index_t nnz, std::uint64_t seed) {
  SplitMix64 rng(seed);
  TripletBuilder b(n, n);
  for (index_t k = 0; k < nnz; ++k)
    b.add(rng.next_index(n), rng.next_index(n), 1.0);
  return std::move(b).build();
}

TEST(Planner, CcsAloneInfeasibleRowMajor) {
  // CCS binds (j, i): with the order (i, j) and no other relation binding
  // i at its first level, no candidate can bind i first.
  Ccs m = Ccs::from_coo(sample(8, 20, 1));
  relation::CcsView a("A", m);
  Query q;
  q.vars = {"i", "j"};
  q.relations.push_back({&a, {"j", "i"}, true, false, false});
  EXPECT_FALSE(plan_order(q, {"i", "j"}, true).has_value());
  EXPECT_TRUE(plan_order(q, {"j", "i"}, true).has_value());
}

TEST(Planner, OrderFreeIntervalMakesAnyOrderFeasible) {
  Ccs m = Ccs::from_coo(sample(8, 20, 2));
  relation::CcsView a("A", m);
  relation::IntervalView i("I", {8, 8});
  Query q;
  q.vars = {"i", "j"};
  q.relations.push_back({&i, {"i", "j"}, true, false, true});
  q.relations.push_back({&a, {"j", "i"}, true, false, false});
  EXPECT_TRUE(plan_order(q, {"i", "j"}, true).has_value());
  EXPECT_TRUE(plan_order(q, {"j", "i"}, true).has_value());
  // The free planner must pick the CCS-driven (column-major) order: it is
  // far cheaper than scanning the dense interval and probing CCS.
  Plan best = plan_query(q);
  EXPECT_EQ(best.levels[0].var, "j");
}

TEST(Planner, CostDecreasesWithSparsity) {
  // The same query over a sparser matrix must be estimated cheaper.
  auto plan_cost = [](index_t nnz) {
    static std::vector<std::unique_ptr<Csr>> keep;  // keep storage alive
    keep.push_back(std::make_unique<Csr>(Csr::from_coo(sample(100, nnz, 3))));
    relation::CsrView* a = new relation::CsrView("A", *keep.back());
    relation::IntervalView* i = new relation::IntervalView("I", {100, 100});
    Query q;
    q.vars = {"i", "j"};
    q.relations.push_back({i, {"i", "j"}, true, false, true});
    q.relations.push_back({a, {"i", "j"}, true, false, false});
    return plan_query(q).total_cost;
  };
  EXPECT_LT(plan_cost(50), plan_cost(2000));
}

TEST(Planner, MergeRequiresTwoSortedSparseFilters) {
  Csr m = Csr::from_coo(sample(50, 300, 4));
  relation::CsrView a("A", m);
  relation::IntervalView i("I", {50, 50});
  Query q;
  q.vars = {"i", "j"};
  q.relations.push_back({&i, {"i", "j"}, true, false, true});
  q.relations.push_back({&a, {"i", "j"}, true, false, false});
  // Only one sparse filter — no merge possible anywhere.
  auto p = plan_order(q, {"i", "j"}, /*allow_merge=*/true);
  ASSERT_TRUE(p.has_value());
  for (const auto& lv : p->levels) EXPECT_EQ(lv.method, JoinMethod::kEnumerate);
}

TEST(Planner, MergeAppearsWithSparseVector) {
  Csr m = Csr::from_coo(sample(50, 600, 5));
  formats::SparseVector x(50, {{3, 1.0}, {17, 1.0}, {20, 1.0}, {44, 1.0},
                               {45, 1.0}, {49, 1.0}});
  relation::CsrView a("A", m);
  relation::SparseVectorView xv("X", x);
  relation::IntervalView i("I", {50, 50});
  Query q;
  q.vars = {"i", "j"};
  q.relations.push_back({&i, {"i", "j"}, true, false, true});
  q.relations.push_back({&a, {"i", "j"}, true, false, false});
  q.relations.push_back({&xv, {"j"}, true, false, false});
  auto merged = plan_order(q, {"i", "j"}, true);
  ASSERT_TRUE(merged.has_value());
  bool has_merge = false;
  for (const auto& lv : merged->levels)
    if (lv.method == JoinMethod::kMerge) {
      has_merge = true;
      EXPECT_EQ(lv.var, "j");
      EXPECT_EQ(lv.drivers.size(), 2u);
    }
  EXPECT_TRUE(has_merge);

  auto probed = plan_order(q, {"i", "j"}, false);
  ASSERT_TRUE(probed.has_value());
  for (const auto& lv : probed->levels)
    EXPECT_EQ(lv.method, JoinMethod::kEnumerate);
}

TEST(Planner, EveryRelationFullyResolved) {
  Csr m = Csr::from_coo(sample(20, 60, 6));
  relation::CsrView a("A", m);
  relation::IntervalView i("I", {20, 20});
  Query q;
  q.vars = {"i", "j"};
  q.relations.push_back({&i, {"i", "j"}, true, false, true});
  q.relations.push_back({&a, {"i", "j"}, true, false, false});
  Plan p = plan_query(q);
  // Each relation-level appears exactly once across drivers+probes.
  std::set<std::pair<index_t, index_t>> seen;
  for (const auto& lv : p.levels) {
    for (const auto& d : lv.drivers)
      EXPECT_TRUE(seen.emplace(d.rel, d.depth).second);
    for (const auto& pr : lv.probes)
      EXPECT_TRUE(seen.emplace(pr.rel, pr.depth).second);
  }
  EXPECT_EQ(seen.size(), 4u);  // two relations x two levels
}

TEST(Planner, ForceOrderHonored) {
  Csr m = Csr::from_coo(sample(10, 30, 7));
  relation::CsrView a("A", m);
  relation::IntervalView i("I", {10, 10});
  Query q;
  q.vars = {"i", "j"};
  q.relations.push_back({&i, {"i", "j"}, true, false, true});
  q.relations.push_back({&a, {"i", "j"}, true, false, false});
  PlannerOptions opts;
  opts.force_order = std::vector<std::string>{"j", "i"};
  Plan p = plan_query(q, opts);
  EXPECT_EQ(p.levels[0].var, "j");
  EXPECT_EQ(p.levels[1].var, "i");
}

}  // namespace
}  // namespace bernoulli::compiler
