// Parameterized cross-format compiler sweep: the same dense matvec
// program compiled against EVERY storage binding x several matrix shapes
// must produce the dense-reference result — the extensibility claim as a
// property test.
#include <gtest/gtest.h>

#include "compiler/loopnest.hpp"
#include "formats/formats.hpp"
#include "relation/array_views.hpp"
#include "relation/hash_index.hpp"
#include "support/rng.hpp"

namespace bernoulli::compiler {
namespace {

using formats::Coo;
using formats::TripletBuilder;

enum class Storage { kCsr, kCcs, kCoo, kEll, kDenseMatrix, kCsrHashed };

std::string storage_name(Storage s) {
  switch (s) {
    case Storage::kCsr: return "csr";
    case Storage::kCcs: return "ccs";
    case Storage::kCoo: return "coo";
    case Storage::kEll: return "ell";
    case Storage::kDenseMatrix: return "dense";
    case Storage::kCsrHashed: return "csr_hashed";
  }
  return "?";
}

struct Case {
  Storage storage;
  index_t rows;
  index_t cols;
  index_t nnz;
  std::uint64_t seed;
};

class MatvecSweep : public ::testing::TestWithParam<Case> {};

TEST_P(MatvecSweep, MatchesDense) {
  const Case& c = GetParam();
  SplitMix64 rng(c.seed);
  TripletBuilder tb(c.rows, c.cols);
  for (index_t k = 0; k < c.nnz; ++k)
    tb.add(rng.next_index(c.rows), rng.next_index(c.cols),
           rng.next_double(-1, 1));
  Coo coo = std::move(tb).build();

  Vector x(static_cast<std::size_t>(c.cols));
  for (auto& v : x) v = rng.next_double(-1, 1);
  Vector y(static_cast<std::size_t>(c.rows), 0.0);
  Vector y_ref(y.size());
  formats::Dense dref = formats::Dense::from_coo(coo);
  formats::spmv(dref, x, y_ref);

  // Storage objects must outlive the kernel.
  formats::Csr csr = formats::Csr::from_coo(coo);
  formats::Ccs ccs = formats::Ccs::from_coo(coo);
  formats::Ell ell = formats::Ell::from_coo(coo);
  formats::Dense dm = formats::Dense::from_coo(coo);
  relation::CsrView csr_base("A", csr);
  relation::HashIndexedView hashed(csr_base, 1);

  Bindings b;
  switch (c.storage) {
    case Storage::kCsr: b.bind_csr("A", csr); break;
    case Storage::kCcs: b.bind_ccs("A", ccs); break;
    case Storage::kCoo: b.bind_coo("A", coo); break;
    case Storage::kEll: b.bind_ell("A", ell); break;
    case Storage::kDenseMatrix: b.bind_dense_matrix("A", dm); break;
    case Storage::kCsrHashed:
      b.bind_view("A", &hashed, {0, 1}, /*sparse=*/true);
      break;
  }
  b.bind_dense_vector("X", ConstVectorView(x));
  b.bind_dense_vector("Y", VectorView(y));

  LoopNest nest{{{"i", c.rows}, {"j", c.cols}},
                {{"Y", {"i"}}, {{"A", {"i", "j"}}, {"X", {"j"}}}, 1.0}};
  compile(nest, b).run();
  for (std::size_t i = 0; i < y.size(); ++i)
    ASSERT_NEAR(y[i], y_ref[i], 1e-12) << "row " << i;
}

std::vector<Case> make_cases() {
  std::vector<Case> cases;
  std::uint64_t seed = 500;
  for (Storage s : {Storage::kCsr, Storage::kCcs, Storage::kCoo,
                    Storage::kEll, Storage::kDenseMatrix,
                    Storage::kCsrHashed}) {
    cases.push_back({s, 1, 1, 1, seed++});
    cases.push_back({s, 10, 14, 40, seed++});
    cases.push_back({s, 14, 10, 40, seed++});
    cases.push_back({s, 32, 32, 64, seed++});   // sparse, empty rows
    cases.push_back({s, 24, 24, 400, seed++});  // dense-ish, duplicates
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllStorages, MatvecSweep,
                         ::testing::ValuesIn(make_cases()),
                         [](const ::testing::TestParamInfo<Case>& info) {
                           const Case& c = info.param;
                           std::ostringstream os;
                           os << storage_name(c.storage) << "_" << c.rows
                              << "x" << c.cols << "_nnz" << c.nnz;
                           return os.str();
                         });

}  // namespace
}  // namespace bernoulli::compiler
