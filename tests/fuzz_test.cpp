// Randomized cross-checks ("fuzz" sweeps with fixed seeds):
//   1. random matvec/matmat configurations through the compiler vs a
//      brute-force dense reference, across random storage choices, orders,
//      and planner options;
//   2. random point-to-point message patterns on the simulated machine vs
//      a sequential reference of the same dataflow.
#include <gtest/gtest.h>

#include "compiler/loopnest.hpp"
#include "formats/formats.hpp"
#include "runtime/machine.hpp"
#include "support/rng.hpp"

namespace bernoulli {
namespace {

using compiler::Bindings;
using compiler::CompiledKernel;
using compiler::LoopNest;
using compiler::PlannerOptions;
using formats::Coo;
using formats::TripletBuilder;

TEST(Fuzz, RandomMatvecConfigurations) {
  SplitMix64 rng(0xF00D);
  for (int round = 0; round < 60; ++round) {
    const auto rows = static_cast<index_t>(1 + rng.next_below(24));
    const auto cols = static_cast<index_t>(1 + rng.next_below(24));
    const auto nnz = static_cast<index_t>(
        rng.next_below(static_cast<std::uint64_t>(rows * cols) + 1));
    TripletBuilder tb(rows, cols);
    for (index_t k = 0; k < nnz; ++k)
      tb.add(rng.next_index(rows), rng.next_index(cols),
             rng.next_double(-2, 2));
    Coo coo = std::move(tb).build();

    Vector x(static_cast<std::size_t>(cols));
    for (auto& v : x) v = rng.next_double(-2, 2);
    Vector y_ref(static_cast<std::size_t>(rows), 0.0);
    formats::Dense d = formats::Dense::from_coo(coo);
    formats::spmv(d, x, y_ref);
    value_t scale = rng.next_double(-2, 2);
    for (auto& v : y_ref) v *= scale;

    formats::Csr csr = formats::Csr::from_coo(coo);
    formats::Ccs ccs = formats::Ccs::from_coo(coo);
    formats::Ell ell = formats::Ell::from_coo(coo);

    Vector y(static_cast<std::size_t>(rows), 0.0);
    Bindings b;
    switch (rng.next_below(4)) {
      case 0: b.bind_csr("A", csr); break;
      case 1: b.bind_ccs("A", ccs); break;
      case 2: b.bind_coo("A", coo); break;
      default: b.bind_ell("A", ell); break;
    }
    b.bind_dense_vector("X", ConstVectorView(x));
    b.bind_dense_vector("Y", VectorView(y));

    LoopNest nest{{{"i", rows}, {"j", cols}},
                  {{"Y", {"i"}}, {{"A", {"i", "j"}}, {"X", {"j"}}}, scale}};
    PlannerOptions opts;
    opts.allow_merge = rng.next_below(2) == 0;
    if (rng.next_below(3) == 0)
      opts.force_order = rng.next_below(2) == 0
                             ? std::vector<std::string>{"i", "j"}
                             : std::vector<std::string>{"j", "i"};
    CompiledKernel k = [&]() -> CompiledKernel {
      try {
        return compiler::compile(nest, b, opts);
      } catch (const Error&) {
        // A forced order can be infeasible for the chosen storage (e.g.
        // CCS forced row-major with no order-free alternative candidates);
        // retry free.
        PlannerOptions free;
        free.allow_merge = opts.allow_merge;
        return compiler::compile(nest, b, free);
      }
    }();
    k.run();
    for (std::size_t i = 0; i < y.size(); ++i)
      ASSERT_NEAR(y[i], y_ref[i], 1e-11)
          << "round " << round << " row " << i;
  }
}

TEST(Fuzz, RandomMessagePatterns) {
  SplitMix64 seeder(0xCAFE);
  for (int round = 0; round < 10; ++round) {
    const int P = static_cast<int>(2 + seeder.next_below(6));
    const std::uint64_t seed = seeder.next();

    // Plan a random dataflow up front: each rank sends a few tagged
    // payloads to random peers; receivers know exactly what to expect.
    struct Msg {
      int src, dst, tag;
      index_t payload;
    };
    std::vector<Msg> messages;
    SplitMix64 plan(seed);
    for (int s = 0; s < P; ++s) {
      int count = static_cast<int>(plan.next_below(5));
      for (int k = 0; k < count; ++k) {
        int dst = static_cast<int>(plan.next_below(static_cast<std::uint64_t>(P)));
        int tag = 100 + static_cast<int>(messages.size());  // unique tags
        messages.push_back({s, dst, tag,
                            static_cast<index_t>(plan.next_below(1 << 20))});
      }
    }

    runtime::Machine machine(P);
    std::vector<index_t> received_sum(static_cast<std::size_t>(P), 0);
    machine.run([&](runtime::Process& p) {
      for (const Msg& m : messages)
        if (m.src == p.rank()) p.send_value<index_t>(m.dst, m.tag, m.payload);
      index_t sum = 0;
      for (const Msg& m : messages)
        if (m.dst == p.rank()) sum += p.recv_value<index_t>(m.src, m.tag);
      received_sum[static_cast<std::size_t>(p.rank())] = sum;
    });

    std::vector<index_t> expect(static_cast<std::size_t>(P), 0);
    for (const Msg& m : messages)
      expect[static_cast<std::size_t>(m.dst)] += m.payload;
    EXPECT_EQ(received_sum, expect) << "round " << round << " P=" << P;
  }
}

TEST(Fuzz, CooBuilderRandomDuplicates) {
  SplitMix64 rng(0xBEEF);
  for (int round = 0; round < 30; ++round) {
    const auto n = static_cast<index_t>(1 + rng.next_below(12));
    formats::Dense ref(n, n);
    TripletBuilder tb(n, n);
    const auto adds = rng.next_below(120);
    for (std::uint64_t k = 0; k < adds; ++k) {
      index_t i = rng.next_index(n), j = rng.next_index(n);
      value_t v = rng.next_double(-1, 1);
      tb.add(i, j, v);
      ref.at(i, j) += v;
    }
    Coo a = std::move(tb).build();
    a.validate();
    for (index_t i = 0; i < n; ++i)
      for (index_t j = 0; j < n; ++j)
        ASSERT_NEAR(a.at(i, j), ref.at(i, j), 1e-12);
  }
}

}  // namespace
}  // namespace bernoulli
