// Workload generators, i-node/clique/coloring machinery, and the full
// BlockSolve ordering pipeline.
#include <gtest/gtest.h>

#include <numeric>

#include "formats/blocksolve.hpp"
#include "formats/csr.hpp"
#include "formats/dense.hpp"
#include "support/error.hpp"
#include "workloads/bs_order.hpp"
#include "workloads/cliques.hpp"
#include "workloads/coloring.hpp"
#include "workloads/grid.hpp"
#include "workloads/inode.hpp"
#include "workloads/suite.hpp"

namespace bernoulli::workloads {
namespace {

using formats::Coo;
using formats::Csr;

TEST(Grid, Dimensions5pt) {
  auto g = grid2d_5pt(4, 5);
  EXPECT_EQ(g.meta.num_points, 20);
  EXPECT_EQ(g.matrix.rows(), 20);
  // Interior point has 4 neighbours + self.
  EXPECT_EQ(g.matrix.row_nnz(1 * 5 + 2), 5);
  // Corner point has 2 neighbours + self.
  EXPECT_EQ(g.matrix.row_nnz(0), 3);
}

TEST(Grid, Dimensions7pt3d) {
  auto g = grid3d_7pt(3, 3, 3);
  EXPECT_EQ(g.matrix.rows(), 27);
  // Center point (1,1,1) has 6 neighbours + self.
  EXPECT_EQ(g.matrix.row_nnz((1 * 3 + 1) * 3 + 1), 7);
}

TEST(Grid, DofBlocksExpandRows) {
  auto g = grid3d_7pt(3, 3, 3, /*dof=*/5);
  EXPECT_EQ(g.meta.num_points, 27);
  EXPECT_EQ(g.matrix.rows(), 135);
  // Center point rows couple to self-block (5) + 6 neighbour blocks (30).
  EXPECT_EQ(g.matrix.row_nnz(((1 * 3 + 1) * 3 + 1) * 5), 35);
}

TEST(Grid, SymmetricAndDiagonallyDominant) {
  for (auto g : {grid2d_5pt(6, 6, 2, 3), grid2d_9pt(5, 5, 1, 4),
                 grid3d_7pt(3, 4, 5, 3, 5)}) {
    EXPECT_TRUE(g.matrix.is_symmetric());
    formats::Dense d = formats::Dense::from_coo(g.matrix);
    for (index_t i = 0; i < d.rows(); ++i) {
      value_t offsum = 0;
      for (index_t j = 0; j < d.cols(); ++j)
        if (i != j) offsum += std::abs(d.at(i, j));
      EXPECT_GT(d.at(i, i), offsum) << "row " << i;
    }
  }
}

TEST(Grid, Deterministic) {
  auto a = grid3d_7pt(4, 4, 4, 2, 9).matrix;
  auto b = grid3d_7pt(4, 4, 4, 2, 9).matrix;
  EXPECT_EQ(a, b);
}

TEST(Grid, RejectsBadArgs) {
  EXPECT_THROW(grid2d_5pt(0, 3), Error);
  EXPECT_THROW(grid3d_7pt(2, 2, 2, 0), Error);
}

TEST(Inode, GroupsIdenticalRows) {
  // 1x3 chain with dof 2: point 0 sees columns {0..3}, point 1 sees all,
  // point 2 sees {2..5} — one i-node of 2 rows per point.
  auto g = grid2d_5pt(1, 3, 2, 7);
  Csr csr = Csr::from_coo(g.matrix);
  auto inodes = find_inodes(csr);
  ASSERT_EQ(inodes.size(), 3u);
  for (std::size_t p = 0; p < 3; ++p) {
    EXPECT_EQ(inodes[p].first_row, static_cast<index_t>(2 * p));
    EXPECT_EQ(inodes[p].num_rows, 2);
  }
}

TEST(Inode, SingletonsWhenAllRowsDiffer) {
  formats::TripletBuilder b(3, 3);
  b.add(0, 0, 1.0);
  b.add(1, 1, 1.0);
  b.add(2, 2, 1.0);
  auto inodes = find_inodes(Csr::from_coo(std::move(b).build()));
  EXPECT_EQ(inodes.size(), 3u);
}

TEST(Inode, FilteredIgnoresMaskedColumns) {
  // Rows 0 and 1 differ only in columns < 2; masking those columns groups
  // them.
  formats::TripletBuilder b(2, 5);
  b.add(0, 0, 1.0);
  b.add(0, 3, 1.0);
  b.add(1, 1, 1.0);
  b.add(1, 3, 1.0);
  Csr csr = Csr::from_coo(std::move(b).build());
  EXPECT_EQ(find_inodes(csr).size(), 2u);
  auto masked =
      find_inodes_filtered(csr, 0, 2, [](index_t c) { return c >= 2; });
  ASSERT_EQ(masked.size(), 1u);
  EXPECT_EQ(masked[0].num_rows, 2);
}

TEST(Cliques, NodeGraphCollapsesDof) {
  auto g = grid2d_5pt(2, 2, 3, 1);
  NodeGraph ng = node_graph_from_matrix(g.matrix, 3);
  EXPECT_EQ(ng.num_nodes, 4);
  EXPECT_TRUE(ng.adjacent(0, 1));
  EXPECT_TRUE(ng.adjacent(0, 2));
  EXPECT_FALSE(ng.adjacent(0, 3));  // diagonal of the 2x2 grid
}

TEST(Cliques, PartitionIsValidOnTriangleRichGraph) {
  auto g = grid2d_9pt(6, 6, 1, 2);
  NodeGraph ng = node_graph_from_matrix(g.matrix, 1);
  auto cliques = clique_partition(ng, 4);
  EXPECT_NO_THROW(check_clique_partition(ng, cliques));
  // A 9-pt grid has triangles, so some clique must have >= 2 nodes.
  std::size_t biggest = 0;
  for (const auto& c : cliques) biggest = std::max(biggest, c.size());
  EXPECT_GE(biggest, 2u);
}

TEST(Cliques, StencilGraphYieldsSingletonOrPairCliques) {
  // A 5-pt stencil graph is triangle-free: cliques have at most 2 nodes.
  auto g = grid2d_5pt(5, 5, 1, 2);
  NodeGraph ng = node_graph_from_matrix(g.matrix, 1);
  auto cliques = clique_partition(ng, 8);
  check_clique_partition(ng, cliques);
  for (const auto& c : cliques) EXPECT_LE(c.size(), 2u);
}

TEST(Cliques, MaxSizeRespected) {
  auto g = grid2d_9pt(6, 6, 1, 2);
  NodeGraph ng = node_graph_from_matrix(g.matrix, 1);
  for (index_t cap : {1, 2, 3}) {
    auto cliques = clique_partition(ng, cap);
    check_clique_partition(ng, cliques);
    for (const auto& c : cliques)
      EXPECT_LE(static_cast<index_t>(c.size()), cap);
  }
}

TEST(Coloring, ProperOnGrids) {
  for (auto g : {grid2d_5pt(7, 7, 1, 3), grid2d_9pt(6, 5, 1, 4),
                 grid3d_7pt(4, 4, 4, 1, 5)}) {
    NodeGraph ng = node_graph_from_matrix(g.matrix, 1);
    auto cliques = clique_partition(ng, 3);
    auto coloring = color_cliques(ng, cliques);
    EXPECT_NO_THROW(check_coloring(ng, cliques, coloring));
    EXPECT_GE(coloring.num_colors, 2);
  }
}

TEST(Coloring, SingleNodeGraphOneColor) {
  NodeGraph ng;
  ng.num_nodes = 1;
  ng.adj.resize(1);
  auto coloring = color_cliques(ng, {{0}});
  EXPECT_EQ(coloring.num_colors, 1);
}

TEST(BsOrdering, IdentityOrderingValid) {
  auto ord = formats::identity_ordering(5);
  EXPECT_EQ(ord.cliques.size(), 5u);
  EXPECT_EQ(ord.num_colors, 1);
}

TEST(BsOrdering, PipelineProducesValidOrdering) {
  auto g = grid3d_7pt(3, 3, 3, 5, 6);
  auto ord = blocksolve_ordering(g.matrix, 5);
  EXPECT_EQ(ord.rows(), g.matrix.rows());
  EXPECT_GE(ord.num_colors, 2);
  // dof unknowns of one node stay together: consecutive new indices.
  for (index_t node = 0; node < g.meta.num_points; ++node) {
    index_t base = ord.old_to_new[static_cast<std::size_t>(node * 5)];
    for (index_t d = 1; d < 5; ++d)
      EXPECT_EQ(ord.old_to_new[static_cast<std::size_t>(node * 5 + d)],
                base + d);
  }
}

TEST(BsMatrix, RoundTripsOriginalMatrix) {
  auto g = grid3d_7pt(3, 3, 2, 5, 8);
  auto ord = blocksolve_ordering(g.matrix, 5);
  auto bs = formats::BsMatrix::build(g.matrix, ord);
  EXPECT_EQ(bs.to_coo_original(), g.matrix);
}

TEST(BsMatrix, SpmvMatchesDense) {
  auto g = grid3d_7pt(3, 3, 3, 5, 10);
  auto ord = blocksolve_ordering(g.matrix, 5);
  auto bs = formats::BsMatrix::build(g.matrix, ord);
  formats::Dense d = formats::Dense::from_coo(g.matrix);

  const auto n = static_cast<std::size_t>(g.matrix.rows());
  Vector x(n), y(n), y_ref(n);
  for (std::size_t i = 0; i < n; ++i)
    x[i] = static_cast<value_t>(i % 17) - 8.0;
  spmv(d, x, y_ref);
  spmv(bs, x, y);
  for (std::size_t i = 0; i < n; ++i) ASSERT_NEAR(y[i], y_ref[i], 1e-10);
}

TEST(BsMatrix, InodesGroupDofRows) {
  // With 5 dof and singleton cliques, every off-diagonal i-node spans the
  // 5 rows of its point.
  auto g = grid3d_7pt(2, 2, 2, 5, 11);
  auto ord = blocksolve_ordering(g.matrix, 5, /*max_clique=*/1);
  auto bs = formats::BsMatrix::build(g.matrix, ord);
  ASSERT_FALSE(bs.inodes().empty());
  for (const auto& b : bs.inodes()) EXPECT_EQ(b.num_rows, 5);
}

TEST(BsMatrix, IdentityOrderingDegeneratesToDiagonalOfScalars) {
  formats::TripletBuilder b(3, 3);
  b.add(0, 0, 2.0);
  b.add(1, 1, 3.0);
  b.add(2, 2, 4.0);
  b.add(0, 1, 1.0);
  b.add(1, 0, 1.0);
  auto a = std::move(b).build();
  auto bs = formats::BsMatrix::build(a, formats::identity_ordering(3));
  EXPECT_EQ(bs.to_coo_original(), a);
  EXPECT_EQ(bs.nnz(), 5);
}

TEST(Suite, AllEightMatricesPresentAndSquare) {
  auto suite = table1_suite();
  ASSERT_EQ(suite.size(), 8u);
  for (const auto& m : suite) {
    EXPECT_EQ(m.matrix.rows(), m.matrix.cols()) << m.name;
    EXPECT_GT(m.matrix.nnz(), 0) << m.name;
    EXPECT_TRUE(m.matrix.is_symmetric()) << m.name;
  }
}

TEST(Suite, StructuralSignaturesMatchOriginals) {
  EXPECT_EQ(suite_matrix("685_bus").matrix.rows(), 685);
  EXPECT_EQ(suite_matrix("gr_30_30").matrix.rows(), 900);
  EXPECT_EQ(suite_matrix("sherman1").matrix.rows(), 1000);
  EXPECT_EQ(suite_matrix("bcsstm27").matrix.rows(), 1224);

  // memplus analogue must have a strongly skewed row-length distribution.
  auto mem = suite_matrix("memplus").matrix;
  auto len = mem.row_lengths();
  index_t maxlen = *std::max_element(len.begin(), len.end());
  double mean = static_cast<double>(mem.nnz()) / mem.rows();
  EXPECT_GT(maxlen, 20 * mean);

  // sherman1 analogue is a 7-pt stencil: max 7 per row.
  auto sh = suite_matrix("sherman1").matrix;
  auto shlen = sh.row_lengths();
  EXPECT_EQ(*std::max_element(shlen.begin(), shlen.end()), 7);

  EXPECT_THROW(suite_matrix("no_such"), Error);
}

}  // namespace
}  // namespace bernoulli::workloads
