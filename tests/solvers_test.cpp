// CG: convergence on SPD systems, exact agreement between sequential and
// distributed versions, and behaviour across variants and distributions.
#include <gtest/gtest.h>

#include <cmath>

#include "distrib/distribution.hpp"
#include "solvers/cg.hpp"
#include "solvers/dist_cg.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "workloads/grid.hpp"

namespace bernoulli::solvers {
namespace {

using distrib::BlockDist;
using formats::Csr;

TEST(Cg, SolvesSmallSpdSystem) {
  auto g = workloads::grid2d_5pt(8, 8, 1, 31);
  Csr a = Csr::from_coo(g.matrix);
  const auto n = static_cast<std::size_t>(a.rows());

  SplitMix64 rng(1);
  Vector x_true(n);
  for (auto& v : x_true) v = rng.next_double(-2.0, 2.0);
  Vector b(n);
  spmv(a, x_true, b);

  Vector x(n, 0.0);
  CgOptions opts;
  opts.max_iterations = 500;
  opts.tolerance = 1e-12;
  CgResult res = cg(a, b, x, opts);
  EXPECT_TRUE(res.converged);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-7);
}

TEST(Cg, FixedIterationMode) {
  auto g = workloads::grid2d_5pt(6, 6, 1, 32);
  Csr a = Csr::from_coo(g.matrix);
  Vector b(static_cast<std::size_t>(a.rows()), 1.0);
  Vector x(b.size(), 0.0);
  CgOptions opts;
  opts.max_iterations = 10;
  opts.tolerance = -1.0;  // no convergence test: exactly 10 iterations
  CgResult res = cg(a, b, x, opts);
  EXPECT_EQ(res.iterations, 10);
  EXPECT_FALSE(res.converged);
}

TEST(Cg, ResidualDecreases) {
  auto g = workloads::grid3d_7pt(4, 4, 4, 1, 33);
  Csr a = Csr::from_coo(g.matrix);
  Vector b(static_cast<std::size_t>(a.rows()), 1.0);
  double prev = 1e30;
  for (int iters : {1, 5, 20}) {
    Vector x(b.size(), 0.0);
    CgOptions opts;
    opts.max_iterations = iters;
    opts.tolerance = -1.0;
    CgResult res = cg(a, b, x, opts);
    EXPECT_LT(res.residual_norm, prev);
    prev = res.residual_norm;
  }
}

TEST(Cg, RejectsZeroDiagonal) {
  formats::TripletBuilder tb(2, 2);
  tb.add(0, 1, 1.0);
  tb.add(1, 0, 1.0);
  Csr a = Csr::from_coo(std::move(tb).build());
  Vector b(2, 1.0), x(2, 0.0);
  EXPECT_THROW(cg(a, b, x), Error);
}

TEST(ExtractDiagonal, PicksDiagonalEntries) {
  formats::TripletBuilder tb(3, 3);
  tb.add(0, 0, 5.0);
  tb.add(1, 2, 1.0);
  tb.add(2, 2, -2.0);
  Vector d = extract_diagonal(Csr::from_coo(std::move(tb).build()));
  EXPECT_DOUBLE_EQ(d[0], 5.0);
  EXPECT_DOUBLE_EQ(d[1], 0.0);
  EXPECT_DOUBLE_EQ(d[2], -2.0);
}

// Distributed CG must match sequential CG iterate-for-iterate: same
// residuals, same solution, independent of rank count and variant.
class DistCgSweep : public ::testing::TestWithParam<spmd::Variant> {};

TEST_P(DistCgSweep, MatchesSequentialExactly) {
  spmd::Variant variant = GetParam();
  auto g = workloads::grid3d_7pt(4, 4, 3, 2, 34);
  Csr a = Csr::from_coo(g.matrix);
  const auto n = static_cast<std::size_t>(a.rows());

  SplitMix64 rng(7);
  Vector b(n);
  for (auto& v : b) v = rng.next_double(-1.0, 1.0);

  CgOptions opts;
  opts.max_iterations = 15;
  opts.tolerance = -1.0;
  Vector x_seq(n, 0.0);
  CgResult seq = cg(a, b, x_seq, opts);

  const int P = 4;
  BlockDist rows(a.rows(), P);
  Vector diag = extract_diagonal(a);

  runtime::Machine machine(P);
  Vector x_dist(n, 0.0);
  std::vector<DistCgResult> results(P);
  std::mutex mu;
  machine.run([&](runtime::Process& p) {
    spmd::DistSpmv dist = spmd::build_dist_spmv(p, a, rows, variant);
    auto mine = rows.owned_indices(p.rank());
    Vector bl(mine.size()), dl(mine.size()), xl(mine.size(), 0.0);
    for (std::size_t k = 0; k < mine.size(); ++k) {
      bl[k] = b[static_cast<std::size_t>(mine[k])];
      dl[k] = diag[static_cast<std::size_t>(mine[k])];
    }
    DistCgResult res = dist_cg(p, dist, dl, bl, xl, opts);
    std::lock_guard<std::mutex> lk(mu);
    results[static_cast<std::size_t>(p.rank())] = res;
    for (std::size_t k = 0; k < mine.size(); ++k)
      x_dist[static_cast<std::size_t>(mine[k])] = xl[k];
  });

  for (const auto& r : results) {
    EXPECT_EQ(r.iterations, seq.iterations);
    EXPECT_NEAR(r.residual_norm, seq.residual_norm,
                1e-9 * (1.0 + seq.residual_norm));
  }
  for (std::size_t i = 0; i < n; ++i)
    ASSERT_NEAR(x_dist[i], x_seq[i], 1e-8) << "x[" << i << "]";
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, DistCgSweep,
    ::testing::Values(spmd::Variant::kBlockSolve,
                      spmd::Variant::kBernoulliMixed, spmd::Variant::kBernoulli,
                      spmd::Variant::kIndirectMixed, spmd::Variant::kIndirect),
    [](const ::testing::TestParamInfo<spmd::Variant>& info) {
      std::string s = spmd::variant_name(info.param);
      for (char& c : s)
        if (c == '-') c = '_';
      return s;
    });

TEST(DistCg, ConvergesToSolution) {
  auto g = workloads::grid3d_7pt(4, 4, 4, 1, 35);
  Csr a = Csr::from_coo(g.matrix);
  const auto n = static_cast<std::size_t>(a.rows());
  SplitMix64 rng(8);
  Vector x_true(n);
  for (auto& v : x_true) v = rng.next_double(-1.0, 1.0);
  Vector b(n);
  spmv(a, x_true, b);

  const int P = 3;
  BlockDist rows(a.rows(), P);
  Vector diag = extract_diagonal(a);
  Vector x_dist(n, 0.0);
  std::mutex mu;
  runtime::Machine machine(P);
  machine.run([&](runtime::Process& p) {
    spmd::DistSpmv dist =
        spmd::build_dist_spmv(p, a, rows, spmd::Variant::kBlockSolve);
    auto mine = rows.owned_indices(p.rank());
    Vector bl(mine.size()), dl(mine.size()), xl(mine.size(), 0.0);
    for (std::size_t k = 0; k < mine.size(); ++k) {
      bl[k] = b[static_cast<std::size_t>(mine[k])];
      dl[k] = diag[static_cast<std::size_t>(mine[k])];
    }
    CgOptions opts;
    opts.max_iterations = 400;
    opts.tolerance = 1e-12;
    DistCgResult res = dist_cg(p, dist, dl, bl, xl, opts);
    EXPECT_TRUE(res.converged);
    std::lock_guard<std::mutex> lk(mu);
    for (std::size_t k = 0; k < mine.size(); ++k)
      x_dist[static_cast<std::size_t>(mine[k])] = xl[k];
  });
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x_dist[i], x_true[i], 1e-7);
}

}  // namespace
}  // namespace bernoulli::solvers
