// The link-time data-movement footprint (compiler::PlanFootprint) and its
// reconciliation with the serving-metrics registry.
//
// derive_footprint promises EXACT static counts for plans that satisfy
// the bulk-drain discipline (flat enumerate levels, always-hit arithmetic
// probes, segmented levels invoked once per parent). These tests hold
// that promise against measurement three ways:
//   1. leaf_tuples equals the executor's measured leaf count (RunStats
//      and the executor.tuples counter) on CSR and CCS SpMV;
//   2. one LinkedRunner run advances execute.model_bytes /
//      execute.model_flops by exactly the footprint, and books exactly
//      one execute.latency sample whose nanoseconds equal the
//      execute.wall_ns rate delta (same integer, same flush site);
//   3. a serial run and a ParallelRunner run book identical
//      deterministic-metric deltas (sample count, model traffic) — the
//      shard-merge determinism the metrics registry guarantees.
// Data-dependent plans (filters, fill-in) must be flagged inexact, and
// an inexact footprint must book NO model traffic.
#include <gtest/gtest.h>

#include <memory>

#include "compiler/link.hpp"
#include "compiler/loopnest.hpp"
#include "formats/formats.hpp"
#include "support/counters.hpp"
#include "support/metrics.hpp"
#include "support/rng.hpp"

namespace bernoulli::compiler {
namespace {

using formats::Coo;
using formats::TripletBuilder;

Coo random_matrix(index_t rows, index_t cols, index_t nnz,
                  std::uint64_t seed) {
  SplitMix64 rng(seed);
  TripletBuilder b(rows, cols);
  for (index_t k = 0; k < nnz; ++k)
    b.add(rng.next_index(rows), rng.next_index(cols),
          rng.next_double(-1.0, 1.0));
  return std::move(b).build();
}

struct Spmv {
  // Owning storage + the compiled y += A x kernel over it. Heap-held
  // (make_spmv returns a unique_ptr) because the kernel's query references
  // views owned by `bindings` and storage at its bind-time address.
  formats::Csr csr;
  formats::Ccs ccs;
  Vector x, y;
  Bindings bindings;
  CompiledKernel kernel;
  index_t target = 1;
  std::vector<index_t> factors{2, 3};
};

enum class Fmt { kCsr, kCcs };

std::unique_ptr<Spmv> make_spmv(Fmt fmt, index_t rows, index_t cols,
                                index_t nnz, std::uint64_t seed) {
  Coo coo = random_matrix(rows, cols, nnz, seed);
  auto s = std::make_unique<Spmv>();
  s->csr = formats::Csr::from_coo(coo);
  s->ccs = formats::Ccs::from_coo(coo);
  s->x.resize(static_cast<std::size_t>(cols));
  s->y.assign(static_cast<std::size_t>(rows), 0.0);
  SplitMix64 rng(seed + 1);
  for (auto& v : s->x) v = rng.next_double(-1, 1);
  if (fmt == Fmt::kCsr)
    s->bindings.bind_csr("A", s->csr);
  else
    s->bindings.bind_ccs("A", s->ccs);
  s->bindings.bind_dense_vector("X", ConstVectorView(s->x));
  s->bindings.bind_dense_vector("Y", VectorView(s->y));
  LoopNest nest{{{"i", rows}, {"j", cols}},
                {{"Y", {"i"}}, {{"A", {"i", "j"}}, {"X", {"j"}}}, 1.0}};
  s->kernel = compile(nest, s->bindings);
  return s;
}

long long rate_delta(const support::MetricsSnapshot& m0,
                     const support::MetricsSnapshot& m1, const char* name) {
  auto get = [&](const support::MetricsSnapshot& s) {
    auto it = s.rates.find(name);
    return it == s.rates.end() ? 0LL : it->second;
  };
  return get(m1) - get(m0);
}

support::LatencySnapshot latency_delta(const support::MetricsSnapshot& m0,
                                       const support::MetricsSnapshot& m1,
                                       const char* name) {
  auto get = [&](const support::MetricsSnapshot& s) {
    auto it = s.latencies.find(name);
    return it == s.latencies.end() ? support::LatencySnapshot{} : it->second;
  };
  support::LatencySnapshot a = get(m0), b = get(m1);
  b.count -= a.count;
  b.sum_ns -= a.sum_ns;
  return b;
}

class FootprintFmt : public ::testing::TestWithParam<Fmt> {};

TEST_P(FootprintFmt, SpmvFootprintIsExactAndMatchesMeasuredWork) {
  auto s = make_spmv(GetParam(), 60, 48, 500, 11);
  LinkedPlan lp = link_plan(s->kernel.plan(), s->kernel.query());
  const PlanFootprint& fp = lp.footprint;
  ASSERT_TRUE(fp.exact) << fp.note;

  const long long nnz = GetParam() == Fmt::kCsr ? s->csr.nnz() : s->ccs.nnz();
  EXPECT_EQ(fp.leaf_tuples, nnz) << fp.note;
  // SpMV moves one index + one value per stored entry, one x read and a
  // y read-modify-write per entry, at 2 flops per entry.
  EXPECT_EQ(fp.flops, 2 * nnz);
  long long value_bytes = 0;
  for (const auto& op : fp.operands) value_bytes += op.value_bytes;
  // A streams nnz values; X reads nnz values; Y is read-modify-write.
  EXPECT_EQ(value_bytes,
            static_cast<long long>(sizeof(value_t)) * (2 * nnz + 2 * nnz));
  EXPECT_GT(fp.index_bytes(), 0);
  EXPECT_EQ(fp.total_bytes(), fp.index_bytes() + fp.value_bytes());

  // Measured leaf count agrees: RunStats.tuples and the executor.tuples
  // counter delta both equal leaf_tuples for one run.
  LinkedRunner runner(std::move(lp));
  LinkedMac mac = link_mac(s->kernel.query(), s->target, s->factors);
  RunStats stats;
  auto c0 = support::counters_snapshot();
  runner.run(mac, &stats);
  auto c1 = support::counters_snapshot();
  EXPECT_EQ(stats.tuples, fp.leaf_tuples);
  auto count = [](const support::CountersSnapshot& snap, const char* k) {
    auto it = snap.counts.find(k);
    return it == snap.counts.end() ? 0LL : it->second;
  };
  EXPECT_EQ(count(c1, "executor.tuples") - count(c0, "executor.tuples"),
            fp.leaf_tuples);
}

TEST_P(FootprintFmt, OneRunBooksFootprintIntoMetricsRegistry) {
  auto s = make_spmv(GetParam(), 40, 40, 300, 23);
  LinkedPlan lp = link_plan(s->kernel.plan(), s->kernel.query());
  ASSERT_TRUE(lp.footprint.exact) << lp.footprint.note;
  const long long bytes = lp.footprint.total_bytes();
  const long long flops = lp.footprint.flops;

  LinkedRunner runner(std::move(lp));
  LinkedMac mac = link_mac(s->kernel.query(), s->target, s->factors);
  runner.run(mac);  // registers the metrics; window starts clean
  auto m0 = support::metrics_snapshot();
  runner.run(mac);
  auto m1 = support::metrics_snapshot();

  EXPECT_EQ(rate_delta(m0, m1, "execute.model_bytes"), bytes);
  EXPECT_EQ(rate_delta(m0, m1, "execute.model_flops"), flops);
  const auto lat = latency_delta(m0, m1, "execute.latency");
  EXPECT_EQ(lat.count, 1);
  // The histogram sum and the wall_ns rate are the SAME integer booked at
  // the single flush site — equal by construction, not within-epsilon.
  EXPECT_EQ(lat.sum_ns, rate_delta(m0, m1, "execute.wall_ns"));
}

TEST_P(FootprintFmt, SerialAndParallelRunnersBookIdenticalDeterministicMetrics) {
  auto s = make_spmv(GetParam(), 64, 64, 600, 31);
  LinkedMac mac = link_mac(s->kernel.query(), s->target, s->factors);

  LinkedRunner serial(link_plan(s->kernel.plan(), s->kernel.query()));
  ParallelRunner parallel(link_plan(s->kernel.plan(), s->kernel.query()), 3);
  serial.run(mac);
  parallel.run(mac);  // both registered + warmed

  auto m0 = support::metrics_snapshot();
  serial.run(mac);
  auto m1 = support::metrics_snapshot();
  parallel.run(mac);
  auto m2 = support::metrics_snapshot();

  // Deterministic subset: one latency sample each (the coordinator books
  // exactly one per run), identical model traffic, and each window's
  // histogram-sum equals its wall_ns rate delta.
  EXPECT_EQ(latency_delta(m0, m1, "execute.latency").count, 1);
  EXPECT_EQ(latency_delta(m1, m2, "execute.latency").count, 1);
  EXPECT_EQ(rate_delta(m0, m1, "execute.model_bytes"),
            rate_delta(m1, m2, "execute.model_bytes"));
  EXPECT_EQ(rate_delta(m0, m1, "execute.model_flops"),
            rate_delta(m1, m2, "execute.model_flops"));
  EXPECT_GT(rate_delta(m0, m1, "execute.model_bytes"), 0);
  EXPECT_EQ(latency_delta(m0, m1, "execute.latency").sum_ns,
            rate_delta(m0, m1, "execute.wall_ns"));
  EXPECT_EQ(latency_delta(m1, m2, "execute.latency").sum_ns,
            rate_delta(m1, m2, "execute.wall_ns"));
}

TEST(Footprint, RejectingFilterIsInexactAndBooksNoModelTraffic) {
  // Loop bounds TIGHTER than the matrix: the iteration-space filter can
  // genuinely reject (columns >= 20 exist in A but not in the j loop), so
  // the surviving-tuple count is data-dependent. The footprint must say
  // so, and runs must not book model traffic.
  Coo coo = random_matrix(30, 30, 200, 7);
  formats::Csr csr = formats::Csr::from_coo(coo);
  Vector x(30, 1.0), y(30, 0.0);
  Bindings b;
  b.bind_csr("A", csr);
  b.bind_dense_vector("X", ConstVectorView(x));
  b.bind_dense_vector("Y", VectorView(y));
  LoopNest nest{{{"i", 30}, {"j", 20}},
                {{"Y", {"i"}}, {{"A", {"i", "j"}}, {"X", {"j"}}}, 1.0}};
  CompiledKernel k = compile(nest, b);
  LinkedPlan lp = link_plan(k.plan(), k.query());
  EXPECT_FALSE(lp.footprint.exact);
  EXPECT_FALSE(lp.footprint.note.empty());
  EXPECT_EQ(lp.footprint.total_bytes(), 0);
  EXPECT_EQ(lp.footprint.flops, 0);

  LinkedRunner runner(std::move(lp));
  LinkedMac mac = link_mac(k.query(), 1, {2, 3});
  runner.run(mac);
  auto m0 = support::metrics_snapshot();
  runner.run(mac);
  auto m1 = support::metrics_snapshot();
  EXPECT_EQ(rate_delta(m0, m1, "execute.model_bytes"), 0);
  EXPECT_EQ(rate_delta(m0, m1, "execute.model_flops"), 0);
  // The latency histogram still records — timing needs no footprint.
  EXPECT_EQ(latency_delta(m0, m1, "execute.latency").count, 1);
}

TEST(Footprint, BcsrSpmvFootprintIsExactIncludingFillZeros) {
  // Random 24x24 blocked at 4x4: most stored blocks carry fill zeros.
  // The blocked level enumerates whole blocks, so the exact leaf count is
  // stored() (= num_blocks * 16), NOT coo nnz — fill is real traffic and
  // real flops, which is the format's bargain, and padding_bytes stays 0.
  Coo coo = random_matrix(24, 24, 120, 41);
  formats::Bsr bsr = formats::Bsr::from_coo(coo, 4);
  ASSERT_GT(bsr.stored(), bsr.to_coo().nnz());
  Vector x(24, 1.0), y(24, 0.0);
  Bindings b;
  b.bind_bsr("A", bsr);
  b.bind_dense_vector("X", ConstVectorView(x));
  b.bind_dense_vector("Y", VectorView(y));
  LoopNest nest{{{"i", 24}, {"j", 24}},
                {{"Y", {"i"}}, {{"A", {"i", "j"}}, {"X", {"j"}}}, 1.0}};
  CompiledKernel k = compile(nest, b);

  LinkedPlan lp = link_plan(k.plan(), k.query());
  const PlanFootprint fp = lp.footprint;
  ASSERT_TRUE(fp.exact) << fp.note;
  const long long stored = bsr.stored();
  EXPECT_EQ(fp.leaf_tuples, stored);
  EXPECT_EQ(fp.flops, 2 * stored);
  EXPECT_EQ(fp.padding_bytes, 0);

  LinkedRunner runner(std::move(lp));
  RunStats stats;
  runner.run(link_mac(k.query(), 1, {2, 3}), &stats);
  EXPECT_EQ(stats.tuples, fp.leaf_tuples);
}

TEST(Footprint, SellSpmvFootprintIsExactWithPaddingSeparate) {
  // Skewed row lengths force heavy SELL padding. Padding lanes are never
  // enumerated: the exact leaf count is nnz, the pad slack is booked as
  // padding_bytes (storage overhead), and total_bytes() — what one run
  // books as execute.model_bytes — excludes it.
  const index_t rows = 20, cols = 24;
  SplitMix64 rng(52);
  TripletBuilder tb(rows, cols);
  for (index_t i = 0; i < rows; ++i) {
    const index_t len = (i % 8 == 0) ? 20 : 1 + i % 4;
    for (index_t k = 0; k < len; ++k)
      tb.add(i, (i + k * 5) % cols, rng.next_double(-1, 1));
  }
  Coo coo = std::move(tb).build();
  formats::Sell sell = formats::Sell::from_coo(coo, 4, 8);
  ASSERT_GT(sell.stored(), sell.nnz());

  Vector x(static_cast<std::size_t>(cols), 1.0);
  Vector y(static_cast<std::size_t>(rows), 0.0);
  Bindings b;
  b.bind_sell("A", sell);
  b.bind_dense_vector("X", ConstVectorView(x));
  b.bind_dense_vector("Y", VectorView(y));
  LoopNest nest{{{"i", rows}, {"j", cols}},
                {{"Y", {"i"}}, {{"A", {"i", "j"}}, {"X", {"j"}}}, 1.0}};
  CompiledKernel k = compile(nest, b);

  LinkedPlan lp = link_plan(k.plan(), k.query());
  const PlanFootprint fp = lp.footprint;
  ASSERT_TRUE(fp.exact) << fp.note;
  const long long nnz = sell.nnz();
  constexpr long long szi = static_cast<long long>(sizeof(index_t));
  constexpr long long szv = static_cast<long long>(sizeof(value_t));
  EXPECT_EQ(fp.leaf_tuples, nnz);
  EXPECT_EQ(fp.flops, 2 * nnz);
  EXPECT_EQ(fp.padding_bytes, (sell.stored() - nnz) * (szi + szv));
  EXPECT_EQ(fp.total_bytes(), fp.index_bytes() + fp.value_bytes());

  LinkedMac mac = link_mac(k.query(), 1, {2, 3});
  LinkedRunner runner(std::move(lp));
  RunStats stats;
  runner.run(mac, &stats);  // registers metrics; window starts clean
  EXPECT_EQ(stats.tuples, nnz);
  auto m0 = support::metrics_snapshot();
  runner.run(mac);
  auto m1 = support::metrics_snapshot();
  EXPECT_EQ(rate_delta(m0, m1, "execute.model_bytes"), fp.total_bytes());
  EXPECT_EQ(rate_delta(m0, m1, "execute.model_flops"), fp.flops);
}

INSTANTIATE_TEST_SUITE_P(Formats, FootprintFmt,
                         ::testing::Values(Fmt::kCsr, Fmt::kCcs),
                         [](const ::testing::TestParamInfo<Fmt>& i) {
                           return i.param == Fmt::kCsr ? "csr" : "ccs";
                         });

}  // namespace
}  // namespace bernoulli::compiler
