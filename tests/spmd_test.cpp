// Distributed SpMV: all five inspector/executor variants must compute the
// sequential product exactly, over every distribution family, and the
// inspector communication volumes must order the way Table 3 claims.
#include <gtest/gtest.h>

#include <numeric>

#include "distrib/distribution.hpp"
#include "formats/csr.hpp"
#include "formats/dense.hpp"
#include "spmd/matvec.hpp"
#include "support/rng.hpp"
#include "workloads/grid.hpp"

namespace bernoulli::spmd {
namespace {

using distrib::BlockDist;
using distrib::CyclicDist;
using distrib::Distribution;
using distrib::IndirectDist;
using distrib::RowRunsDist;
using formats::Coo;
using formats::Csr;

constexpr Variant kAllVariants[] = {
    Variant::kBlockSolve, Variant::kBernoulliMixed, Variant::kBernoulli,
    Variant::kIndirectMixed, Variant::kIndirect};

// Runs one distributed SpMV and gathers the result in global order.
Vector dist_spmv_result(const Csr& a, const Distribution& rows, int P,
                        Variant variant, ConstVectorView x_global) {
  runtime::Machine machine(P);
  Vector y_global(static_cast<std::size_t>(a.rows()), 0.0);
  std::mutex mu;
  machine.run([&](runtime::Process& p) {
    DistSpmv dist = build_dist_spmv(p, a, rows, variant);
    auto mine = rows.owned_indices(p.rank());
    Vector x_full(static_cast<std::size_t>(dist.sched.full_size()), 0.0);
    for (std::size_t k = 0; k < mine.size(); ++k)
      x_full[k] = x_global[static_cast<std::size_t>(mine[k])];
    Vector y_local(mine.size(), 0.0);
    dist.apply(p, x_full, y_local, /*tag=*/7);
    std::lock_guard<std::mutex> lk(mu);
    for (std::size_t k = 0; k < mine.size(); ++k)
      y_global[static_cast<std::size_t>(mine[k])] = y_local[k];
  });
  return y_global;
}

struct Case {
  std::string dist;
  Variant variant;
};

std::ostream& operator<<(std::ostream& os, const Case& c) {
  return os << c.dist << "_" << variant_name(c.variant);
}

class DistSpmvSweep : public ::testing::TestWithParam<Case> {};

TEST_P(DistSpmvSweep, MatchesSequential) {
  const auto& prm = GetParam();
  auto g = workloads::grid3d_7pt(4, 4, 3, 2, 21);
  Csr a = Csr::from_coo(g.matrix);
  const index_t n = a.rows();
  const int P = 4;

  std::unique_ptr<Distribution> rows;
  if (prm.dist == "block") {
    rows = std::make_unique<BlockDist>(n, P);
  } else if (prm.dist == "cyclic") {
    rows = std::make_unique<CyclicDist>(n, P);
  } else if (prm.dist == "indirect") {
    SplitMix64 rng(3);
    std::vector<int> map(static_cast<std::size_t>(n));
    for (auto& m : map) m = static_cast<int>(rng.next_below(P));
    rows = std::make_unique<IndirectDist>(map, P);
  } else {
    std::vector<index_t> color_ptr{0, n / 3, 2 * n / 3, n};
    rows = std::make_unique<RowRunsDist>(
        distrib::rowruns_from_color_ptr(color_ptr, n, P));
  }

  SplitMix64 rng(9);
  Vector x(static_cast<std::size_t>(n));
  for (auto& v : x) v = rng.next_double(-1.0, 1.0);
  Vector y_ref(static_cast<std::size_t>(n));
  spmv(a, x, y_ref);

  Vector y = dist_spmv_result(a, *rows, P, prm.variant, x);
  for (std::size_t i = 0; i < y.size(); ++i)
    ASSERT_NEAR(y[i], y_ref[i], 1e-11) << "row " << i;
}

std::vector<Case> make_cases() {
  std::vector<Case> cases;
  for (const char* d : {"block", "cyclic", "indirect", "rowruns"})
    for (Variant v : kAllVariants) cases.push_back({d, v});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllDistsAllVariants, DistSpmvSweep,
                         ::testing::ValuesIn(make_cases()),
                         [](const ::testing::TestParamInfo<Case>& info) {
                           std::ostringstream os;
                           os << info.param;
                           std::string s = os.str();
                           for (char& c : s)
                             if (c == '-') c = '_';
                           return s;
                         });

TEST(DistSpmv, GhostCountsMatchBoundary) {
  // On a block-distributed 1-D chain each interior rank needs exactly one
  // ghost from each neighbour.
  auto g = workloads::grid2d_5pt(1, 40, 1, 22);
  Csr a = Csr::from_coo(g.matrix);
  BlockDist rows(40, 4);
  runtime::Machine machine(4);
  std::vector<index_t> ghosts(4, -1);
  machine.run([&](runtime::Process& p) {
    DistSpmv dist = build_dist_spmv(p, a, rows, Variant::kBlockSolve);
    ghosts[static_cast<std::size_t>(p.rank())] = dist.sched.ghosts;
  });
  EXPECT_EQ(ghosts[0], 1);
  EXPECT_EQ(ghosts[1], 2);
  EXPECT_EQ(ghosts[2], 2);
  EXPECT_EQ(ghosts[3], 1);
}

TEST(DistSpmv, InspectorVolumeOrdering) {
  // Table 3's mechanism: the Chaos-based inspectors move bytes
  // proportional to the problem size; the replicated ones move only the
  // request lists (~ boundary).
  auto g = workloads::grid3d_7pt(6, 6, 6, 1, 23);
  Csr a = Csr::from_coo(g.matrix);
  const int P = 4;
  // BlockSolve-style distribution: several runs per processor, so the
  // blockwise Chaos table does NOT align with ownership (the paper's
  // setting). Under a plain block distribution the table build would be
  // free by construction.
  const index_t n = a.rows();
  std::vector<index_t> color_ptr{0, n / 4, n / 2, 3 * n / 4, n};
  distrib::RowRunsDist rows =
      distrib::rowruns_from_color_ptr(color_ptr, n, P);

  auto inspector_bytes = [&](Variant v) {
    runtime::Machine machine(P);
    auto reports = machine.run([&](runtime::Process& p) {
      DistSpmv dist = build_dist_spmv(p, a, rows, v);
      (void)dist;
    });
    long long total = 0;
    for (const auto& r : reports) total += r.stats.bytes;
    return total;
  };

  long long bs = inspector_bytes(Variant::kBlockSolve);
  long long mixed = inspector_bytes(Variant::kBernoulliMixed);
  long long chaos_mixed = inspector_bytes(Variant::kIndirectMixed);
  EXPECT_EQ(bs, mixed);  // same communication sets, different local work
  EXPECT_GT(chaos_mixed, 4 * mixed);
}

TEST(DistSpmv, NaiveBuildsFullTranslation) {
  auto g = workloads::grid3d_7pt(4, 4, 4, 1, 24);
  Csr a = Csr::from_coo(g.matrix);
  BlockDist rows(a.rows(), 2);
  runtime::Machine machine(2);
  machine.run([&](runtime::Process& p) {
    DistSpmv naive = build_dist_spmv(p, a, rows, Variant::kBernoulli);
    EXPECT_EQ(static_cast<index_t>(naive.xtrans.size()), a.cols());
    DistSpmv mixed = build_dist_spmv(p, a, rows, Variant::kBernoulliMixed);
    EXPECT_TRUE(mixed.xtrans.empty());
    // Same communication requirements either way.
    EXPECT_EQ(naive.sched.ghosts, mixed.sched.ghosts);
  });
}

TEST(DistSpmv, SingleRankNeedsNoCommunication) {
  auto g = workloads::grid2d_5pt(5, 5, 1, 25);
  Csr a = Csr::from_coo(g.matrix);
  BlockDist rows(a.rows(), 1);
  runtime::Machine machine(1);
  auto reports = machine.run([&](runtime::Process& p) {
    DistSpmv dist = build_dist_spmv(p, a, rows, Variant::kBlockSolve);
    EXPECT_EQ(dist.sched.ghosts, 0);
    Vector x(static_cast<std::size_t>(a.rows()), 1.0), y(x.size());
    dist.apply(p, x, y, 3);
    Vector y_ref(x.size());
    spmv(a, x, y_ref);
    for (std::size_t i = 0; i < y.size(); ++i)
      EXPECT_NEAR(y[i], y_ref[i], 1e-12);
  });
  EXPECT_EQ(reports[0].stats.messages, 0);
}

}  // namespace
}  // namespace bernoulli::spmd
