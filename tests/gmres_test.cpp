// GMRES(m): convergence on unsymmetric systems, restarts, and
// preconditioning.
#include <gtest/gtest.h>

#include <cmath>

#include "solvers/gmres.hpp"
#include "solvers/ic.hpp"
#include "support/rng.hpp"
#include "workloads/grid.hpp"

namespace bernoulli::solvers {
namespace {

using formats::Csr;
using formats::TripletBuilder;

// Convection-diffusion-like: a grid Laplacian with an asymmetric advection
// perturbation; diagonally dominant, not symmetric.
Csr unsymmetric_system(index_t nx, index_t ny, std::uint64_t seed) {
  auto g = workloads::grid2d_5pt(nx, ny, 1, seed);
  TripletBuilder b(g.matrix.rows(), g.matrix.cols());
  auto rowind = g.matrix.rowind();
  auto colind = g.matrix.colind();
  auto vals = g.matrix.vals();
  for (index_t k = 0; k < g.matrix.nnz(); ++k) {
    value_t v = vals[k];
    if (colind[k] > rowind[k]) v *= 0.6;   // downwind weakened
    if (colind[k] < rowind[k]) v *= 1.25;  // upwind strengthened
    b.add(rowind[k], colind[k], v);
  }
  return Csr::from_coo(std::move(b).build());
}

TEST(Gmres, SolvesUnsymmetricSystem) {
  Csr a = unsymmetric_system(10, 10, 1);
  const auto n = static_cast<std::size_t>(a.rows());
  SplitMix64 rng(2);
  Vector x_true(n);
  for (auto& v : x_true) v = rng.next_double(-1, 1);
  Vector b(n);
  spmv(a, x_true, b);

  Vector x(n, 0.0);
  GmresOptions opts;
  opts.restart = 30;
  opts.max_iterations = 400;
  opts.tolerance = 1e-12;
  GmresResult res = gmres(a, b, x, opts);
  EXPECT_TRUE(res.converged) << "residual " << res.residual_norm;
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-7);
}

TEST(Gmres, SmallRestartStillConverges) {
  Csr a = unsymmetric_system(8, 8, 3);
  const auto n = static_cast<std::size_t>(a.rows());
  Vector b(n, 1.0);

  GmresOptions tight;
  tight.restart = 5;
  tight.max_iterations = 2000;
  tight.tolerance = 1e-10;
  Vector x1(n, 0.0);
  GmresResult r_tight = gmres(a, b, x1, tight);
  EXPECT_TRUE(r_tight.converged);

  GmresOptions wide = tight;
  wide.restart = 60;
  Vector x2(n, 0.0);
  GmresResult r_wide = gmres(a, b, x2, wide);
  EXPECT_TRUE(r_wide.converged);
  // Restarting loses Krylov information: the small restart needs at least
  // as many matvecs.
  EXPECT_GE(r_tight.iterations, r_wide.iterations);
}

TEST(Gmres, MatchesCgOnSpdSystem) {
  auto g = workloads::grid2d_5pt(9, 9, 1, 4);
  Csr a = Csr::from_coo(g.matrix);
  const auto n = static_cast<std::size_t>(a.rows());
  SplitMix64 rng(5);
  Vector x_true(n);
  for (auto& v : x_true) v = rng.next_double(-1, 1);
  Vector b(n);
  spmv(a, x_true, b);

  Vector x_cg(n, 0.0), x_gm(n, 0.0);
  CgOptions copts;
  copts.max_iterations = 500;
  copts.tolerance = 1e-12;
  ASSERT_TRUE(cg(a, b, x_cg, copts).converged);
  GmresOptions gopts;
  gopts.max_iterations = 500;
  gopts.tolerance = 1e-12;
  ASSERT_TRUE(gmres(a, b, x_gm, gopts).converged);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x_gm[i], x_cg[i], 1e-6);
}

TEST(Gmres, JacobiPreconditioningReducesIterations) {
  // Scale rows wildly so unpreconditioned GMRES struggles.
  Csr base = unsymmetric_system(10, 10, 6);
  TripletBuilder tb(base.rows(), base.cols());
  for (index_t i = 0; i < base.rows(); ++i) {
    value_t scale = 1.0 + 99.0 * static_cast<double>(i % 7) / 6.0;
    auto cols = base.row_cols(i);
    auto vals = base.row_vals(i);
    for (std::size_t k = 0; k < cols.size(); ++k)
      tb.add(i, cols[k], vals[k] * scale);
  }
  Csr a = Csr::from_coo(std::move(tb).build());
  const auto n = static_cast<std::size_t>(a.rows());
  Vector b(n, 1.0);
  Vector diag = extract_diagonal(a);

  GmresOptions opts;
  opts.restart = 20;
  opts.max_iterations = 3000;
  opts.tolerance = 1e-10;

  Vector x1(n, 0.0);
  GmresResult plain = gmres(a, b, x1, opts);
  Vector x2(n, 0.0);
  GmresResult pre = gmres(a, b, x2, opts,
                          [&](ConstVectorView r, VectorView z) {
                            for (std::size_t i = 0; i < z.size(); ++i)
                              z[i] = r[i] / diag[i];
                          });
  EXPECT_TRUE(pre.converged);
  if (plain.converged) {
    EXPECT_LE(pre.iterations, plain.iterations);
  }
  // Preconditioned solution is the true solution.
  Vector ax(n);
  spmv(a, x2, ax);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(ax[i], b[i], 1e-7);
}

TEST(Gmres, ZeroRhsConvergesImmediately) {
  Csr a = unsymmetric_system(4, 4, 7);
  const auto n = static_cast<std::size_t>(a.rows());
  Vector b(n, 0.0), x(n, 0.0);
  GmresResult res = gmres(a, b, x, {});
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.iterations, 0);
}

}  // namespace
}  // namespace bernoulli::solvers
