// BSR format: blocking invariants, round trips, and SpMV agreement.
#include <gtest/gtest.h>

#include "formats/bsr.hpp"
#include "formats/dense.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "workloads/grid.hpp"

namespace bernoulli::formats {
namespace {

Coo random_matrix(index_t rows, index_t cols, index_t nnz, std::uint64_t seed) {
  SplitMix64 rng(seed);
  TripletBuilder b(rows, cols);
  for (index_t k = 0; k < nnz; ++k)
    b.add(rng.next_index(rows), rng.next_index(cols),
          rng.next_double(-1.0, 1.0));
  return std::move(b).build();
}

TEST(Bsr, DofMatrixBlocksPerfectly) {
  // A dof-5 grid matrix blocks exactly into 5x5 blocks: the number of
  // blocks equals the number of point couplings (no wasted fill beyond
  // genuinely zero couplings inside stored blocks).
  auto g = workloads::grid3d_7pt(3, 3, 3, 5, 1);
  Bsr bsr = Bsr::from_coo(g.matrix, 5);
  // Blocks = point-graph edges (x2) + diagonal points.
  index_t expected_blocks = 0;
  {
    // 3x3x3 grid: 3 faces directions * 2*3*3... count via node adjacency.
    auto ng = g.matrix;
    (void)ng;
    // 27 diagonal blocks + 2 * 54 coupling blocks (54 grid edges).
    expected_blocks = 27 + 2 * 54;
  }
  EXPECT_EQ(bsr.num_blocks(), expected_blocks);
  EXPECT_EQ(bsr.to_coo(), g.matrix);
}

TEST(Bsr, Block1IsPlainCsrStructure) {
  Coo a = random_matrix(12, 12, 40, 2);
  Bsr bsr = Bsr::from_coo(a, 1);
  EXPECT_EQ(bsr.num_blocks(), a.nnz());
  EXPECT_EQ(bsr.to_coo(), a);
}

TEST(Bsr, SpmvMatchesDense) {
  for (index_t block : {1, 2, 3, 4, 6}) {
    Coo a = random_matrix(24, 36, 200, 100 + static_cast<std::uint64_t>(block));
    Bsr bsr = Bsr::from_coo(a, block);
    bsr.validate();
    Dense d = Dense::from_coo(a);
    Vector x(36);
    SplitMix64 rng(5);
    for (auto& v : x) v = rng.next_double(-1, 1);
    Vector y(24), y_ref(24);
    spmv(d, x, y_ref);
    spmv(bsr, x, y);
    for (std::size_t i = 0; i < 24; ++i)
      ASSERT_NEAR(y[i], y_ref[i], 1e-12) << "block " << block;
  }
}

TEST(Bsr, LookupMatchesDense) {
  Coo a = random_matrix(20, 20, 90, 7);
  Bsr bsr = Bsr::from_coo(a, 4);
  Dense d = Dense::from_coo(a);
  for (index_t i = 0; i < 20; ++i)
    for (index_t j = 0; j < 20; ++j)
      ASSERT_DOUBLE_EQ(bsr.at(i, j), d.at(i, j));
}

TEST(Bsr, FillCountsStorageOverhead) {
  // A diagonal matrix blocked 4x4 stores 16 values per nonzero.
  TripletBuilder b(8, 8);
  for (index_t i = 0; i < 8; ++i) b.add(i, i, 1.0);
  Bsr bsr = Bsr::from_coo(std::move(b).build(), 4);
  EXPECT_EQ(bsr.num_blocks(), 2);
  EXPECT_EQ(bsr.stored(), 32);  // 2 blocks x 16 slots for 8 nonzeros
}

TEST(Bsr, RejectsIndivisibleDimensions) {
  Coo a = random_matrix(10, 10, 20, 8);
  EXPECT_THROW(Bsr::from_coo(a, 3), Error);
}

TEST(Bsr, SpmvAddAccumulates) {
  Coo a = random_matrix(12, 12, 50, 9);
  Bsr bsr = Bsr::from_coo(a, 3);
  Vector x(12, 1.0), y(12, 2.0), ax(12);
  spmv(bsr, x, ax);
  spmv_add(bsr, x, y);
  for (std::size_t i = 0; i < 12; ++i) ASSERT_NEAR(y[i], 2.0 + ax[i], 1e-13);
}

}  // namespace
}  // namespace bernoulli::formats
