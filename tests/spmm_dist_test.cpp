// Distributed SpMM: every variant must reproduce the sequential
// sparse x skinny-dense product, and one schedule must serve all widths.
#include <gtest/gtest.h>

#include "blas/spmm.hpp"
#include "distrib/distribution.hpp"
#include "spmd/spmm.hpp"
#include "support/rng.hpp"
#include "workloads/grid.hpp"

namespace bernoulli::spmd {
namespace {

using distrib::BlockDist;
using formats::Csr;
using formats::Dense;

class DistSpmmSweep : public ::testing::TestWithParam<Variant> {};

TEST_P(DistSpmmSweep, MatchesSequentialSpmm) {
  Variant variant = GetParam();
  auto g = workloads::grid3d_7pt(4, 4, 3, 2, 51);
  Csr a = Csr::from_coo(g.matrix);
  const index_t n = a.rows();
  const index_t width = 4;
  const int P = 4;
  BlockDist rows(n, P);

  Dense x(n, width);
  SplitMix64 rng(3);
  for (index_t i = 0; i < n; ++i)
    for (index_t r = 0; r < width; ++r) x.at(i, r) = rng.next_double(-1, 1);
  Dense y_ref(n, width);
  blas::spmm(a, x, y_ref);

  Dense y(n, width);
  std::mutex mu;
  runtime::Machine machine(P);
  machine.run([&](runtime::Process& p) {
    DistSpmv dist = build_dist_spmv(p, a, rows, variant);
    auto mine = rows.owned_indices(p.rank());
    Dense x_full(dist.sched.full_size(), width);
    for (std::size_t k = 0; k < mine.size(); ++k)
      for (index_t r = 0; r < width; ++r)
        x_full.at(static_cast<index_t>(k), r) = x.at(mine[k], r);
    Dense yl(static_cast<index_t>(mine.size()), width);
    dist_spmm(p, dist, x_full, yl, /*tag=*/3);
    std::lock_guard<std::mutex> lk(mu);
    for (std::size_t k = 0; k < mine.size(); ++k)
      for (index_t r = 0; r < width; ++r)
        y.at(mine[k], r) = yl.at(static_cast<index_t>(k), r);
  });

  for (index_t i = 0; i < n; ++i)
    for (index_t r = 0; r < width; ++r)
      ASSERT_NEAR(y.at(i, r), y_ref.at(i, r), 1e-11) << i << "," << r;
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, DistSpmmSweep,
    ::testing::Values(Variant::kBlockSolve, Variant::kBernoulliMixed,
                      Variant::kBernoulli, Variant::kIndirectMixed,
                      Variant::kIndirect),
    [](const ::testing::TestParamInfo<Variant>& info) {
      std::string s = variant_name(info.param);
      for (char& c : s)
        if (c == '-') c = '_';
      return s;
    });

TEST(DistSpmm, WidthOneEqualsDistSpmv) {
  auto g = workloads::grid2d_5pt(8, 8, 1, 52);
  Csr a = Csr::from_coo(g.matrix);
  const index_t n = a.rows();
  const int P = 2;
  BlockDist rows(n, P);
  Vector diff(static_cast<std::size_t>(P), 0.0);
  runtime::Machine machine(P);
  machine.run([&](runtime::Process& p) {
    DistSpmv dist = build_dist_spmv(p, a, rows, Variant::kBernoulliMixed);
    auto mine = rows.owned_indices(p.rank());
    Vector x_full(static_cast<std::size_t>(dist.sched.full_size()));
    for (std::size_t k = 0; k < x_full.size(); ++k)
      x_full[k] = static_cast<value_t>(k % 5) - 2.0;
    Dense xb(dist.sched.full_size(), 1);
    for (index_t i = 0; i < dist.sched.full_size(); ++i)
      xb.at(i, 0) = x_full[static_cast<std::size_t>(i)];

    Vector y1(mine.size());
    Vector x_copy = x_full;
    dist.apply(p, x_copy, y1, 4);
    Dense y2(static_cast<index_t>(mine.size()), 1);
    dist_spmm(p, dist, xb, y2, 5);
    double d = 0;
    for (std::size_t k = 0; k < mine.size(); ++k)
      d = std::max(d, std::abs(y1[k] - y2.at(static_cast<index_t>(k), 0)));
    diff[static_cast<std::size_t>(p.rank())] = d;
  });
  for (double d : diff) EXPECT_LT(d, 1e-12);
}

}  // namespace
}  // namespace bernoulli::spmd
