// Per-level time-attribution profiler (support/profile.hpp) contracts:
//
//  - Overhead: a profiled linked run costs < 2% wall over an unprofiled
//    run on a Table-2-sized CRS matvec (best-of-k minima, mirroring
//    tests/trace_overhead_test.cpp — noise only ever adds time).
//  - Invariant: the raw sampled values committed by every flush obey
//    incl[d] == sum_kind self[d][*] + incl[d+1] exactly; additive across
//    runs, so it must hold on any registry snapshot.
//  - Determinism: work counts are exact integer sums, so a serial run and
//    a --threads=N run of the same plan produce bitwise-identical work
//    arrays (sampled ns are estimates and deliberately NOT compared).
//  - Reconciliation: the sum of per-level self estimates lands within the
//    documented tolerance of the accumulated execute wall time (the
//    estimator clamps each run at 100% of its own wall).
//  - Round-trip: profile_collapsed() parses back through
//    profile_parse_collapsed() with the totals preserved.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "compiler/link.hpp"
#include "compiler/loopnest.hpp"
#include "formats/formats.hpp"
#include "support/profile.hpp"
#include "support/rng.hpp"

namespace bernoulli::compiler {
namespace {

struct Spmv {
  formats::Csr csr;
  Vector x, y;
  Bindings bindings;
  CompiledKernel kernel;
};

std::unique_ptr<Spmv> make_spmv(index_t n, index_t nnz, std::uint64_t seed) {
  SplitMix64 rng(seed);
  formats::TripletBuilder b(n, n);
  for (index_t k = 0; k < nnz; ++k)
    b.add(rng.next_index(n), rng.next_index(n), rng.next_double(-1, 1));
  auto s = std::make_unique<Spmv>();
  s->csr = formats::Csr::from_coo(std::move(b).build());
  s->x.assign(static_cast<std::size_t>(n), 1.0);
  s->y.assign(static_cast<std::size_t>(n), 0.0);
  s->bindings.bind_csr("A", s->csr);
  s->bindings.bind_dense_vector("X", ConstVectorView(s->x));
  s->bindings.bind_dense_vector("Y", VectorView(s->y));
  LoopNest nest{{{"i", n}, {"j", n}},
                {{"Y", {"i"}}, {{"A", {"i", "j"}}, {"X", {"j"}}}, 1.0}};
  s->kernel = compile(nest, s->bindings);
  return s;
}

// Restores the process-global profiling switch and clears the registry on
// both sides, so these tests neither see nor leave foreign state.
struct ProfilingGuard {
  ProfilingGuard() {
    support::profile_reset();
    support::set_profiling(true);
  }
  ~ProfilingGuard() {
    support::set_profiling(false);
    support::profile_reset();
  }
};

long long best_run_ns(LinkedRunner& runner, const LinkedMac& mac, int k) {
  long long best = -1;
  for (int i = 0; i < k; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    runner.run(mac);
    const auto t1 = std::chrono::steady_clock::now();
    const long long ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count();
    if (best < 0 || ns < best) best = ns;
  }
  return best;
}

// ---- Overhead budget ------------------------------------------------

TEST(ProfileOverhead, ProfiledLinkedRunStaysUnderTwoPercent) {
  // Table-2-sized CRS: enough rows that the sampler opens several
  // brackets per run, enough nnz that 2% of the wall is far above timer
  // granularity. Profiled and unprofiled runs are INTERLEAVED — two
  // separated best-of-k phases would compare different machine-load
  // regimes on a shared CI box — and the loop keeps sampling pairs until
  // the running minima land under the budget (noise only ever adds time,
  // so with a true overhead below 2% the minima must converge there; a
  // real regression never does and exhausts the cap).
  auto s = make_spmv(512, 260'000, 47);
  LinkedRunner runner(link_plan(s->kernel.plan(), s->kernel.query()));
  LinkedMac mac = link_mac(s->kernel.query(), 1, {2, 3});

  support::set_profiling(true);
  best_run_ns(runner, mac, 1);  // warm the profiled path + timer calib
  support::set_profiling(false);
  best_run_ns(runner, mac, 5);  // warm caches and the metrics registry

  long long plain = -1, profiled = -1;
  constexpr int kMinPairs = 30, kMaxPairs = 3000;
  for (int i = 0; i < kMaxPairs; ++i) {
    support::set_profiling(false);
    const long long u = best_run_ns(runner, mac, 1);
    if (plain < 0 || u < plain) plain = u;
    support::set_profiling(true);
    const long long p = best_run_ns(runner, mac, 1);
    if (profiled < 0 || p < profiled) profiled = p;
    if (i + 1 >= kMinPairs && profiled - plain < plain / 50) break;
  }
  support::set_profiling(false);
  support::profile_reset();

  // 2% of the unprofiled best, floored at 2us so a very fast host cannot
  // push the budget below one scheduler-jitter quantum.
  const long long overhead = profiled - plain;
  const long long budget = std::max(plain / 50, 2'000LL);
  EXPECT_LT(overhead, budget)
      << "profiling added " << overhead << " ns per run (unprofiled best "
      << plain << " ns, profiled best " << profiled << " ns, budget "
      << budget << " ns)";
}

// ---- Raw self/inclusive invariant -----------------------------------

TEST(Profile, RawSelfPlusChildrenEqualsInclusive) {
  ProfilingGuard guard;
  auto s = make_spmv(128, 2'000, 48);
  LinkedRunner runner(link_plan(s->kernel.plan(), s->kernel.query()));
  LinkedMac mac = link_mac(s->kernel.query(), 1, {2, 3});
  for (int i = 0; i < 4; ++i) runner.run(mac);

  const support::ProfileSnapshot snap = support::profile_snapshot();
  ASSERT_GT(snap.runs, 0);
  ASSERT_EQ(snap.levels, 2);  // the i,j matvec plan
  for (int d = 0; d < snap.levels; ++d) {
    long long self = 0;
    for (int k = 0; k < support::kProfKinds; ++k) self += snap.raw_ns[d][k];
    const long long deeper =
        d + 1 < snap.levels ? snap.raw_incl_ns[d + 1] : 0;
    EXPECT_EQ(snap.raw_incl_ns[d], self + deeper) << "level " << d;
  }
  EXPECT_GT(snap.raw_incl_ns[0], 0) << "no bracket ever closed";
}

// ---- Serial vs threaded: exact work counts --------------------------

std::vector<long long> work_counts(const support::ProfileSnapshot& s) {
  std::vector<long long> w;
  for (int d = 0; d < support::kProfileMaxLevels; ++d)
    for (int k = 0; k < support::kProfKinds; ++k) w.push_back(s.work[d][k]);
  return w;
}

TEST(Profile, SerialAndThreadedWorkCountsIdentical) {
  ProfilingGuard guard;
  auto s = make_spmv(96, 1'500, 49);
  LinkedMac mac = link_mac(s->kernel.query(), 1, {2, 3});

  LinkedRunner serial(link_plan(s->kernel.plan(), s->kernel.query()));
  serial.run(mac);
  const support::ProfileSnapshot ss = support::profile_snapshot();
  const std::vector<long long> serial_work = work_counts(ss);
  ASSERT_GT(ss.level_work(0), 0);

  for (int threads : {2, 8}) {
    support::profile_reset();
    ParallelRunner runner(link_plan(s->kernel.plan(), s->kernel.query()),
                          threads);
    runner.run(mac);
    const support::ProfileSnapshot ts = support::profile_snapshot();
    EXPECT_EQ(serial_work, work_counts(ts)) << "threads=" << threads;
    EXPECT_EQ(ss.levels, ts.levels) << "threads=" << threads;
  }
}

// ---- Reconciliation against the execute wall ------------------------

TEST(Profile, LevelSelfTimesReconcileWithWall) {
  ProfilingGuard guard;
  auto s = make_spmv(512, 65'000, 50);
  LinkedRunner runner(link_plan(s->kernel.plan(), s->kernel.query()));
  LinkedMac mac = link_mac(s->kernel.query(), 1, {2, 3});
  for (int i = 0; i < 8; ++i) runner.run(mac);

  const support::ProfileSnapshot snap = support::profile_snapshot();
  ASSERT_GT(snap.wall_ns, 0);
  const long long total = snap.total_self_ns();
  EXPECT_GT(total, 0);
  // The estimator clamps each run's attributed total at 100% of that
  // run's wall, so the sum can never exceed the accumulated wall; the
  // lower bound is the documented tolerance (>= 25% attributed — the
  // plan body IS the run, so sampling should land far above this).
  EXPECT_LE(total, snap.wall_ns);
  EXPECT_GE(4 * total, snap.wall_ns)
      << "attributed " << total << " ns of " << snap.wall_ns
      << " ns accumulated execute wall";
}

// ---- Collapsed-stack round trip -------------------------------------

TEST(Profile, CollapsedStackRoundTrips) {
  ProfilingGuard guard;
  auto s = make_spmv(128, 2'500, 51);
  LinkedRunner runner(link_plan(s->kernel.plan(), s->kernel.query()));
  LinkedMac mac = link_mac(s->kernel.query(), 1, {2, 3});
  for (int i = 0; i < 3; ++i) runner.run(mac);
  support::profile_phase_add(support::kProfPhaseExchange, 1'234);

  const std::string text = support::profile_collapsed();
  ASSERT_FALSE(text.empty());
  std::vector<std::pair<std::string, long long>> frames;
  ASSERT_TRUE(support::profile_parse_collapsed(text, &frames));
  ASSERT_FALSE(frames.empty());

  long long sum = 0;
  bool saw_phase = false;
  for (const auto& [stack, count] : frames) {
    EXPECT_EQ(stack.rfind("plan", 0), 0u) << stack;
    EXPECT_GE(count, 0);
    sum += count;
    saw_phase = saw_phase || stack == "plan;exchange";
  }
  EXPECT_TRUE(saw_phase);

  const support::ProfileSnapshot snap = support::profile_snapshot();
  long long want = snap.total_self_ns();
  for (int p = 0; p < support::kProfPhases; ++p) want += snap.phase_ns[p];
  EXPECT_EQ(sum, want);

  // Malformed lines fail the parse loudly instead of skipping.
  EXPECT_FALSE(support::profile_parse_collapsed("no-count-field\n", &frames));
  EXPECT_FALSE(support::profile_parse_collapsed("plan;x -5\n", &frames));
}

}  // namespace
}  // namespace bernoulli::compiler
