// The paper's Eq. 6 end-to-end: matvec over REAL jagged-diagonal storage
// through the permutation relation P(i, i') and the permuted-matrix view
// A'(i', j, a).
#include <gtest/gtest.h>

#include "compiler/executor.hpp"
#include "compiler/planner.hpp"
#include "formats/dense.hpp"
#include "formats/jds.hpp"
#include "relation/array_views.hpp"
#include "relation/jds_view.hpp"
#include "support/rng.hpp"

namespace bernoulli::relation {
namespace {

using formats::Coo;
using formats::Jds;
using formats::TripletBuilder;

Coo random_matrix(index_t n, index_t nnz, std::uint64_t seed) {
  SplitMix64 rng(seed);
  TripletBuilder b(n, n);
  for (index_t k = 0; k < nnz; ++k)
    b.add(rng.next_index(n), rng.next_index(n), rng.next_double(-1.0, 1.0));
  return std::move(b).build();
}

TEST(JdsView, RowContract) {
  Coo coo = random_matrix(12, 50, 1);
  Jds jds = Jds::from_coo(coo);
  JdsView v("A", jds);
  formats::Dense d = formats::Dense::from_coo(coo);
  auto perm = jds.perm();
  // Every (permuted row, column) lookup matches the dense matrix at the
  // ORIGINAL row.
  for (index_t ip = 0; ip < 12; ++ip) {
    for (index_t j = 0; j < 12; ++j) {
      index_t pos = v.level(1).search(ip, j);
      value_t want = d.at(perm[static_cast<std::size_t>(ip)], j);
      if (pos < 0) {
        EXPECT_DOUBLE_EQ(want, 0.0) << ip << "," << j;
      } else {
        EXPECT_DOUBLE_EQ(v.value_at(pos), want) << ip << "," << j;
      }
    }
  }
}

TEST(JdsView, EnumerationSortedPerRow) {
  Coo coo = random_matrix(15, 70, 2);
  Jds jds = Jds::from_coo(coo);
  JdsView v("A", jds);
  for (index_t ip = 0; ip < 15; ++ip) {
    index_t prev = -1;
    v.level(1).enumerate(ip, [&](index_t j, index_t) {
      EXPECT_GT(j, prev);
      prev = j;
      return true;
    });
  }
}

TEST(JdsView, Equation6MatvecMatchesDense) {
  // Q = sigma_P ( I(i,j) |><| X(j) |><| Y(i) |><| P(i,i') |><| A'(i',j) )
  const index_t n = 20;
  Coo coo = random_matrix(n, 90, 3);
  Jds jds = Jds::from_coo(coo);

  SplitMix64 rng(4);
  Vector x(static_cast<std::size_t>(n));
  for (auto& v : x) v = rng.next_double(-1, 1);
  Vector y(static_cast<std::size_t>(n), 0.0);

  JdsView aview("Ap", jds);
  PermutationView pview("P", aview.original_to_permuted());
  IntervalView iview("I", {n, n});
  DenseVectorView xview("X", ConstVectorView(x));
  DenseVectorView yview("Y", VectorView(y));

  Query q;
  q.vars = {"i", "ip", "j"};
  q.relations.push_back({&iview, {"i", "j"}, true, false, true});
  q.relations.push_back({&pview, {"i", "ip"}, true, false, false});
  q.relations.push_back({&aview, {"ip", "j"}, true, false, false});
  q.relations.push_back({&xview, {"j"}, false, false, false});
  q.relations.push_back({&yview, {"i"}, false, true, false});

  compiler::Plan plan = compiler::plan_query(q);
  compiler::execute(plan, q, compiler::multiply_accumulate(q, 4, {2, 3}));

  formats::Dense d = formats::Dense::from_coo(coo);
  for (index_t i = 0; i < n; ++i) {
    value_t ref = 0;
    for (index_t j = 0; j < n; ++j)
      ref += d.at(i, j) * x[static_cast<std::size_t>(j)];
    ASSERT_NEAR(y[static_cast<std::size_t>(i)], ref, 1e-12) << "i=" << i;
  }
}

TEST(JdsView, EmptyRowsHandled) {
  // Matrix with empty rows: shortest permuted rows have zero entries.
  TripletBuilder b(6, 6);
  b.add(0, 0, 1.0);
  b.add(0, 3, 2.0);
  b.add(4, 2, 3.0);
  Jds jds = Jds::from_coo(std::move(b).build());
  JdsView v("A", jds);
  int count = 0;
  v.level(1).enumerate(5, [&](index_t, index_t) {  // last permuted row: empty
    ++count;
    return true;
  });
  EXPECT_EQ(count, 0);
  EXPECT_EQ(v.level(1).search(5, 0), -1);
}

}  // namespace
}  // namespace bernoulli::relation
