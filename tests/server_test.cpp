// KernelServer tests (PR 10 tentpole): plan-cache hit/miss semantics and
// LRU eviction, concurrent differential serving (N client threads x M
// queries, outputs bitwise-identical to serial engine execution, counters
// reconciled), and the batched SpMM-style sweep's bitwise contract with
// both the per-request path and blas::spmm.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "blas/spmm.hpp"
#include "formats/formats.hpp"
#include "server/kernel_server.hpp"
#include "support/counters.hpp"
#include "support/metrics.hpp"
#include "support/rng.hpp"

namespace bernoulli {
namespace {

formats::Csr random_csr(index_t rows, index_t cols, index_t nnz,
                        std::uint64_t seed) {
  SplitMix64 rng(seed);
  formats::TripletBuilder b(rows, cols);
  for (index_t k = 0; k < nnz; ++k)
    b.add(rng.next_index(rows), rng.next_index(cols),
          rng.next_double(-1.0, 1.0));
  return formats::Csr::from_coo(std::move(b).build());
}

Vector random_x(std::size_t n, std::uint64_t seed) {
  SplitMix64 rng(seed);
  Vector x(n);
  for (value_t& v : x) v = rng.next_double(-1.0, 1.0);
  return x;
}

// y = A x in the engine's exact enumeration order and multiply chain
// (row-ascending, nonzero-ascending, prod = scale * A * x with scale 1),
// so every comparison below is bitwise, not approximate.
Vector reference_spmv(const formats::Csr& A, const Vector& x) {
  Vector y(static_cast<std::size_t>(A.rows()), 0.0);
  const auto rowptr = A.rowptr();
  const auto colind = A.colind();
  const auto vals = A.vals();
  for (index_t i = 0; i < A.rows(); ++i) {
    for (index_t e = rowptr[static_cast<std::size_t>(i)];
         e < rowptr[static_cast<std::size_t>(i) + 1]; ++e) {
      value_t prod = 1.0;
      prod *= vals[static_cast<std::size_t>(e)];
      prod *= x[static_cast<std::size_t>(
          colind[static_cast<std::size_t>(e)])];
      y[static_cast<std::size_t>(i)] += prod;
    }
  }
  return y;
}

long long counter_of(const support::CountersSnapshot& s,
                     const std::string& name) {
  auto it = s.counts.find(name);
  return it == s.counts.end() ? 0 : it->second;
}

TEST(KernelServer, CacheHitMissAndBitwiseResult) {
  formats::Csr A = random_csr(60, 50, 420, 201);
  server::KernelServer srv;
  const int h = srv.add_csr("A", A);
  EXPECT_EQ(srv.cache_size(), 0u);  // artifacts build lazily

  const Vector x = random_x(50, 202);
  const Vector expect = reference_spmv(A, x);
  Vector y(60, -1.0);
  srv.spmv(h, ConstVectorView(x), VectorView(y));
  EXPECT_EQ(y, expect);

  server::ServerStats s = srv.stats();
  EXPECT_EQ(s.requests, 1);
  EXPECT_EQ(s.cache_misses, 1);
  EXPECT_EQ(s.cache_hits, 0);
  EXPECT_EQ(srv.cache_size(), 1u);

  std::fill(y.begin(), y.end(), -1.0);
  srv.spmv(h, ConstVectorView(x), VectorView(y));
  EXPECT_EQ(y, expect);
  s = srv.stats();
  EXPECT_EQ(s.requests, 2);
  EXPECT_EQ(s.cache_misses, 1);
  EXPECT_EQ(s.cache_hits, 1);
  EXPECT_EQ(srv.cache_size(), 1u);
}

TEST(KernelServer, SameStorageSharesOneCachedPlan) {
  formats::Csr A = random_csr(30, 30, 150, 203);
  server::KernelServer srv;
  const int h1 = srv.add_csr("A", A);
  const int h2 = srv.add_csr("A-alias", A);
  EXPECT_EQ(srv.key_of(h1), srv.key_of(h2));

  const Vector x = random_x(30, 204);
  Vector y1(30), y2(30);
  srv.spmv(h1, ConstVectorView(x), VectorView(y1));
  srv.spmv(h2, ConstVectorView(x), VectorView(y2));
  EXPECT_EQ(y1, y2);
  const server::ServerStats s = srv.stats();
  EXPECT_EQ(s.cache_misses, 1);  // second handle hits the shared entry
  EXPECT_EQ(s.cache_hits, 1);
  EXPECT_EQ(srv.cache_size(), 1u);

  // Same shape, DIFFERENT storage: distinct key.
  formats::Csr B = random_csr(30, 30, 150, 203);
  const int h3 = srv.add_csr("B", B);
  EXPECT_NE(srv.key_of(h1), srv.key_of(h3));
}

TEST(KernelServer, LruEvictionIsBoundedAndRecoverable) {
  formats::Csr A = random_csr(24, 24, 100, 205);
  formats::Csr B = random_csr(24, 24, 100, 206);
  formats::Csr C = random_csr(24, 24, 100, 207);
  server::ServerOptions opts;
  opts.plan_cache_capacity = 2;
  server::KernelServer srv(opts);
  const int ha = srv.add_csr("A", A);
  const int hb = srv.add_csr("B", B);
  const int hc = srv.add_csr("C", C);

  const Vector x = random_x(24, 208);
  Vector y(24);
  srv.spmv(ha, ConstVectorView(x), VectorView(y));  // miss: cache {A}
  srv.spmv(hb, ConstVectorView(x), VectorView(y));  // miss: cache {B, A}
  EXPECT_EQ(srv.cache_size(), 2u);
  EXPECT_EQ(srv.stats().cache_evictions, 0);

  srv.spmv(hc, ConstVectorView(x), VectorView(y));  // miss: evicts A (LRU)
  EXPECT_EQ(srv.cache_size(), 2u);
  EXPECT_EQ(srv.stats().cache_evictions, 1);

  srv.spmv(hb, ConstVectorView(x), VectorView(y));  // hit: B stayed cached
  EXPECT_EQ(srv.stats().cache_hits, 1);

  srv.spmv(ha, ConstVectorView(x), VectorView(y));  // miss again: rebuilt
  EXPECT_EQ(srv.stats().cache_evictions, 2);        // C was LRU this time
  EXPECT_EQ(srv.cache_size(), 2u);
  EXPECT_EQ(y, reference_spmv(A, x));               // rebuilt entry serves
}

// N client threads x M distinct queries against one server: every
// response bitwise-equal to serial engine execution, and the executor.*
// run count reconciles exactly — one engine-run group per request plus
// one warmup run per cache miss, whether requests were batched or not.
TEST(KernelServer, ConcurrentClientsMatchSerialBitwiseAndReconcile) {
  formats::Csr A = random_csr(120, 100, 1400, 209);
  constexpr int kClients = 4;
  constexpr int kQueries = 24;

  // Precompute every query and its serial reference.
  std::vector<Vector> xs, expects;
  for (int t = 0; t < kClients; ++t)
    for (int q = 0; q < kQueries; ++q) {
      xs.push_back(random_x(100, 1000 + static_cast<std::uint64_t>(
                                            t * kQueries + q)));
      expects.push_back(reference_spmv(A, xs.back()));
    }

  server::KernelServer srv;
  const int h = srv.add_csr("A", A);
  const support::CountersSnapshot before = support::counters_snapshot();

  std::vector<Vector> ys(xs.size(), Vector(120, 0.0));
  std::vector<std::thread> clients;
  for (int t = 0; t < kClients; ++t)
    clients.emplace_back([&, t] {
      for (int q = 0; q < kQueries; ++q) {
        const std::size_t i = static_cast<std::size_t>(t * kQueries + q);
        srv.spmv(h, ConstVectorView(xs[i]), VectorView(ys[i]));
      }
    });
  for (std::thread& c : clients) c.join();

  for (std::size_t i = 0; i < xs.size(); ++i)
    EXPECT_EQ(ys[i], expects[i]) << "request " << i;

  // Counter reconciliation: each request books one engine-run group
  // (batched sweeps replay the cached delta per request), plus one
  // warmup run per cache miss.
  const support::CountersSnapshot after = support::counters_snapshot();
  const server::ServerStats s = srv.stats();
  EXPECT_EQ(s.requests, kClients * kQueries);
  EXPECT_EQ(counter_of(after, "executor.runs") -
                counter_of(before, "executor.runs"),
            kClients * kQueries + s.cache_misses);

  // The single-booking invariant holds through concurrent serving and
  // batched replay: every latency nanosecond is also a wall nanosecond.
  const support::MetricsSnapshot m = support::metrics_snapshot();
  ASSERT_TRUE(m.latencies.count("execute.latency"));
  EXPECT_EQ(m.latencies.at("execute.latency").sum_ns,
            m.rates.at("execute.wall_ns"));
}

// The batched sweep must reproduce per-request results bitwise. Drive
// enough concurrent identical traffic that sweeps actually form (leader
// preemption windows coalesce followers), retrying the workload until
// the server reports at least one multi-request batch; every response is
// checked bitwise against the unbatched reference regardless.
TEST(KernelServer, BatchedSweepBitwiseEqualsUnbatchedAndSpmm) {
  formats::Csr A = random_csr(200, 200, 3000, 210);
  constexpr int kClients = 8;
  constexpr int kQueries = 40;

  std::vector<Vector> xs, expects;
  for (int t = 0; t < kClients; ++t) {
    xs.push_back(random_x(200, 2000 + static_cast<std::uint64_t>(t)));
    expects.push_back(reference_spmv(A, xs.back()));
  }

  // Differential reference #2: blas::spmm over the same right-hand sides
  // (column r of B = client r's x) must agree bitwise with the engine
  // reference — the sweep, the engine and spmm share one multiply chain.
  formats::Dense B(200, kClients), C(200, kClients);
  for (int r = 0; r < kClients; ++r)
    for (index_t j = 0; j < 200; ++j)
      B.at(j, r) = xs[static_cast<std::size_t>(r)][static_cast<std::size_t>(j)];
  blas::spmm(A, B, C);
  for (int r = 0; r < kClients; ++r)
    for (index_t i = 0; i < 200; ++i)
      ASSERT_EQ(C.at(i, r),
                expects[static_cast<std::size_t>(r)][static_cast<std::size_t>(i)]);

  server::ServerOptions opts;
  opts.max_batch = kClients;
  server::KernelServer srv(opts);
  const int h = srv.add_csr("A", A);

  long long batched = 0;
  for (int round = 0; round < 20 && batched == 0; ++round) {
    std::vector<std::thread> clients;
    std::atomic<int> failures{0};
    for (int t = 0; t < kClients; ++t)
      clients.emplace_back([&, t] {
        const std::size_t ti = static_cast<std::size_t>(t);
        Vector y(200);
        for (int q = 0; q < kQueries; ++q) {
          srv.spmv(h, ConstVectorView(xs[ti]), VectorView(y));
          if (y != expects[ti]) failures.fetch_add(1);
        }
      });
    for (std::thread& c : clients) c.join();
    ASSERT_EQ(failures.load(), 0) << "batched response diverged bitwise";
    batched = srv.stats().batched_requests;
  }
  EXPECT_GT(batched, 0) << "no multi-request sweep ever formed";
  EXPECT_GT(srv.stats().batches, 0);
}

// Shape guard: a request with mismatched vector sizes must be rejected,
// not silently read out of bounds.
TEST(KernelServer, RejectsShapeMismatch) {
  formats::Csr A = random_csr(10, 8, 30, 211);
  server::KernelServer srv;
  const int h = srv.add_csr("A", A);
  Vector x(8, 1.0), y_bad(9, 0.0);
  EXPECT_THROW(srv.spmv(h, ConstVectorView(x), VectorView(y_bad)),
               std::exception);
  EXPECT_THROW(srv.key_of(99), std::exception);
}

// The specialized-codegen path (when the toolchain accepts) must serve
// the same bits; when it refuses, the server falls back to the linked
// runner and the request still succeeds.
TEST(KernelServer, SpecializedPathServesSameBits) {
  formats::Csr A = random_csr(50, 50, 400, 212);
  server::ServerOptions opts;
  opts.use_specialized = true;
  opts.batching = false;
  server::KernelServer srv(opts);
  const int h = srv.add_csr("A", A);
  const Vector x = random_x(50, 213);
  Vector y(50);
  srv.spmv(h, ConstVectorView(x), VectorView(y));
  EXPECT_EQ(y, reference_spmv(A, x));
}

}  // namespace
}  // namespace bernoulli
