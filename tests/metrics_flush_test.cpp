// Regression tests for the observability commit lock (PR 10, satellite:
// concurrent-safe per-run flush). A per-run flush books a GROUP — one
// execute.latency sample, the matching execute.wall_ns delta, the
// executor.* counters, fan-out buckets — and a concurrent
// metrics_snapshot() must never see half of it. The witness invariant:
// execute.latency.sum_ns == execute.wall_ns at EVERY snapshot, because
// both record the same integer nanoseconds at the same flush site.
// Before the commit lock, the mid-flight assertions below trip (a
// snapshot lands between the two bookings) and the interleavings race
// under ThreadSanitizer.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "compiler/loopnest.hpp"
#include "formats/formats.hpp"
#include "support/metrics.hpp"
#include "support/rng.hpp"

namespace bernoulli {
namespace {

formats::Csr random_csr(index_t rows, index_t cols, index_t nnz,
                        std::uint64_t seed) {
  SplitMix64 rng(seed);
  formats::TripletBuilder b(rows, cols);
  for (index_t k = 0; k < nnz; ++k)
    b.add(rng.next_index(rows), rng.next_index(cols),
          rng.next_double(-1.0, 1.0));
  return formats::Csr::from_coo(std::move(b).build());
}

compiler::CompiledKernel compile_spmv(compiler::Bindings& b,
                                      const formats::Csr& A,
                                      ConstVectorView x, VectorView y) {
  b.bind_csr("A", A);
  b.bind_dense_vector("x", x);
  b.bind_dense_vector("y", y);
  compiler::LoopNest nest;
  nest.loops = {{"i", A.rows()}, {"j", A.cols()}};
  nest.body.target = {"y", {"i"}};
  nest.body.factors = {{"A", {"i", "j"}}, {"x", {"j"}}};
  return compiler::compile(nest, b);
}

// sum_ns vs wall_ns out of one snapshot; {0, 0} when nothing booked yet.
std::pair<long long, long long> latency_vs_wall(
    const support::MetricsSnapshot& s) {
  long long sum = 0;
  if (auto it = s.latencies.find("execute.latency"); it != s.latencies.end())
    sum = it->second.sum_ns;
  long long wall = 0;
  if (auto it = s.rates.find("execute.wall_ns"); it != s.rates.end())
    wall = it->second;
  return {sum, wall};
}

TEST(MetricsFlush, SerialRunsKeepLatencySumEqualToWall) {
  support::metrics_reset();
  formats::Csr A = random_csr(40, 40, 260, 101);
  Vector x(40, 0.5), y(40, 0.0);
  compiler::Bindings b;
  const compiler::CompiledKernel k =
      compile_spmv(b, A, ConstVectorView(x), VectorView(y));
  constexpr int kRuns = 25;
  for (int i = 0; i < kRuns; ++i) k.run();
  const support::MetricsSnapshot s = support::metrics_snapshot();
  const auto [sum, wall] = latency_vs_wall(s);
  EXPECT_EQ(sum, wall);
  EXPECT_EQ(s.latencies.at("execute.latency").count, kRuns);
}

// The regression: snapshots taken WHILE another thread flushes runs must
// always see a consistent group. Without the commit lock this fails on
// the first snapshot that lands between the latency booking and the
// wall_ns booking of one run.
TEST(MetricsFlush, ConcurrentSnapshotsNeverSeeTornFlush) {
  support::metrics_reset();
  formats::Csr A = random_csr(64, 64, 700, 102);
  Vector x(64, 1.0), y(64, 0.0);
  compiler::Bindings b;
  const compiler::CompiledKernel k =
      compile_spmv(b, A, ConstVectorView(x), VectorView(y));
  constexpr int kRuns = 400;

  std::atomic<bool> done{false};
  std::thread runner([&] {
    for (int i = 0; i < kRuns; ++i) k.run();
    done.store(true, std::memory_order_release);
  });

  long long checks = 0;
  while (!done.load(std::memory_order_acquire)) {
    const support::MetricsSnapshot s = support::metrics_snapshot();
    const auto [sum, wall] = latency_vs_wall(s);
    ASSERT_EQ(sum, wall) << "torn flush observed after " << checks
                         << " consistent snapshots";
    ++checks;
  }
  runner.join();

  const support::MetricsSnapshot s = support::metrics_snapshot();
  const auto [sum, wall] = latency_vs_wall(s);
  EXPECT_EQ(sum, wall);
  EXPECT_EQ(s.latencies.at("execute.latency").count, kRuns);
  EXPECT_GT(checks, 0) << "snapshot thread never overlapped the runs";
}

// metrics_reset() is a reader-side participant too: resetting mid-flush
// must not split a group either (reset between a run's two bookings
// would leave wall_ns without its latency sample, breaking the invariant
// for every later snapshot).
TEST(MetricsFlush, ConcurrentResetKeepsGroupsAtomic) {
  support::metrics_reset();
  formats::Csr A = random_csr(32, 32, 180, 103);
  Vector x(32, 2.0), y(32, 0.0);
  compiler::Bindings b;
  const compiler::CompiledKernel k =
      compile_spmv(b, A, ConstVectorView(x), VectorView(y));

  std::atomic<bool> done{false};
  std::thread runner([&] {
    for (int i = 0; i < 200; ++i) k.run();
    done.store(true, std::memory_order_release);
  });
  while (!done.load(std::memory_order_acquire)) {
    support::metrics_reset();
    const auto [sum, wall] = latency_vs_wall(support::metrics_snapshot());
    ASSERT_EQ(sum, wall);
  }
  runner.join();
  support::metrics_reset();
  const auto [sum, wall] = latency_vs_wall(support::metrics_snapshot());
  EXPECT_EQ(sum, wall);
}

}  // namespace
}  // namespace bernoulli
