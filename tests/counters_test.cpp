// Unit tests for the observability substrate: the JSON writer's encoding
// contract and the counter registry's semantics (identity, snapshot/reset,
// phase tagging, thread-local phase isolation).
#include <gtest/gtest.h>

#include <stdexcept>
#include <thread>

#include "support/counters.hpp"
#include "support/error.hpp"
#include "support/json_writer.hpp"

namespace bernoulli::support {
namespace {

TEST(JsonWriter, CompactDocument) {
  JsonWriter w;
  w.begin_object();
  w.key("name").value("A");
  w.key("n").value(42);
  w.key("xs").begin_array().value(1).value(2.5).value(true).end_array();
  w.key("nested").begin_object().key("ok").value(false).end_object();
  w.end_object();
  EXPECT_EQ(w.str(),
            "{\"name\":\"A\",\"n\":42,\"xs\":[1,2.5,true],"
            "\"nested\":{\"ok\":false}}");
}

TEST(JsonWriter, PrettyPrintIndents) {
  JsonWriter w(2);
  w.begin_object();
  w.key("a").value(1);
  w.key("b").begin_array().value(2).end_array();
  w.end_object();
  EXPECT_EQ(w.str(), "{\n  \"a\": 1,\n  \"b\": [\n    2\n  ]\n}");
}

TEST(JsonWriter, EscapesStrings) {
  JsonWriter w;
  w.value(std::string_view("a\"b\\c\nd\te\x01"));
  EXPECT_EQ(w.str(), "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
}

TEST(JsonWriter, EscapesEveryControlCharacter) {
  // Lock the full U+0000..U+001F range: short forms where RFC 8259 names
  // one, \u00XX otherwise — so Perfetto (a strict parser) accepts traces
  // whose span names carry arbitrary bytes.
  for (int c = 0; c < 0x20; ++c) {
    std::string s(1, static_cast<char>(c));
    JsonWriter w;
    w.value(std::string_view(s));
    std::string expect;
    switch (c) {
      case '\b': expect = "\"\\b\""; break;
      case '\f': expect = "\"\\f\""; break;
      case '\n': expect = "\"\\n\""; break;
      case '\r': expect = "\"\\r\""; break;
      case '\t': expect = "\"\\t\""; break;
      default: {
        char buf[16];
        std::snprintf(buf, sizeof(buf), "\"\\u%04x\"", c);
        expect = buf;
      }
    }
    EXPECT_EQ(w.str(), expect) << "control char " << c;
  }
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  const double cases[] = {std::numeric_limits<double>::quiet_NaN(),
                          std::numeric_limits<double>::infinity(),
                          -std::numeric_limits<double>::infinity()};
  for (double v : cases) {
    JsonWriter w;
    w.value(v);
    EXPECT_EQ(w.str(), "null");
  }
}

TEST(JsonWriter, DoublesRoundTripShortest) {
  {
    JsonWriter w;
    w.value(0.1);
    EXPECT_EQ(w.str(), "0.1");
  }
  {
    JsonWriter w;
    w.value(3.0);
    EXPECT_EQ(w.str(), "3");
  }
  {
    JsonWriter w;
    w.value(1.0 / 3.0);
    EXPECT_EQ(std::stod(w.str()), 1.0 / 3.0);
  }
  {
    JsonWriter w;
    w.value(std::numeric_limits<double>::infinity());
    EXPECT_EQ(w.str(), "null");
  }
}

TEST(JsonWriter, RawSplicesSubdocument) {
  JsonWriter inner;
  inner.begin_object();
  inner.key("x").value(1);
  inner.end_object();
  JsonWriter w;
  w.begin_object();
  w.key("sub").raw(inner.str());
  w.end_object();
  EXPECT_EQ(w.str(), "{\"sub\":{\"x\":1}}");
}

TEST(JsonWriter, MisuseTrips) {
  JsonWriter w;
  w.begin_object();
  EXPECT_THROW(w.value(1), Error);   // value without key
  EXPECT_THROW(w.str(), Error);      // unclosed container
}

TEST(Counters, SameNameSameCounter) {
  Counter& a = counter("test.same_name");
  Counter& b = counter("test.same_name");
  EXPECT_EQ(&a, &b);
  a.reset();
  a.add(3);
  b.add(4);
  EXPECT_EQ(a.value(), 7);
}

TEST(Counters, SnapshotAndReset) {
  counter("test.snap").reset();
  counter("test.snap").add(5);
  time_counter("test.snap_time").reset();
  time_counter("test.snap_time").add(0.25);
  auto snap = counters_snapshot();
  EXPECT_EQ(snap.counts["test.snap"], 5);
  EXPECT_DOUBLE_EQ(snap.seconds["test.snap_time"], 0.25);

  counters_reset();
  snap = counters_snapshot();
  EXPECT_EQ(snap.counts["test.snap"], 0);
  EXPECT_DOUBLE_EQ(snap.seconds["test.snap_time"], 0.0);
}

TEST(Counters, PhaseScopingRestores) {
  EXPECT_EQ(counter_phase(), "main");
  {
    PhaseScope inspector("inspector");
    EXPECT_EQ(counter_phase(), "inspector");
    {
      PhaseScope executor("executor");
      EXPECT_EQ(counter_phase(), "executor");
      phase_counter("test.fam", "hits").add(1);
    }
    EXPECT_EQ(counter_phase(), "inspector");
    phase_counter("test.fam", "hits").add(1);
  }
  EXPECT_EQ(counter_phase(), "main");
  EXPECT_EQ(counter("test.fam.executor.hits").value(), 1);
  EXPECT_EQ(counter("test.fam.inspector.hits").value(), 1);
}

TEST(Counters, PhaseIsThreadLocal) {
  PhaseScope scoped("executor");
  std::string other_thread_phase;
  std::thread t([&] { other_thread_phase = counter_phase(); });
  t.join();
  // A fresh thread starts at "main" regardless of this thread's scope —
  // this is what lets each simulated rank carry its own phase tag.
  EXPECT_EQ(other_thread_phase, "main");
  EXPECT_EQ(counter_phase(), "executor");
}

TEST(Counters, PhaseScopeRestoresOnException) {
  EXPECT_EQ(counter_phase(), "main");
  try {
    PhaseScope inspector("inspector");
    throw std::runtime_error("inspector blew up");
  } catch (const std::runtime_error&) {
  }
  // The whole point of RAII phase scoping: an exception mid-phase must
  // not leave later counters mis-tagged.
  EXPECT_EQ(counter_phase(), "main");
}

TEST(Counters, TextRenderingIsDeterministicGolden) {
  counters_reset();
  counter("test.golden.b").add(2);
  counter("test.golden.a").add(11);
  time_counter("test.golden.t").add(0.5);
  // skip_zero drops every other (reset) counter in the process-wide
  // registry, leaving exactly the three set above — sorted by name,
  // counts before seconds, two spaces of padding to the widest included
  // name, times in scientific notation with an " s" suffix.
  EXPECT_EQ(counters_text(/*skip_zero=*/true),
            "test.golden.a  11\n"
            "test.golden.b  2\n"
            "test.golden.t  5.000e-01 s\n");
}

TEST(Counters, TextAndJsonRenderings) {
  counters_reset();
  counter("test.render").add(9);
  time_counter("test.render_time").add(1.5);
  std::string text = counters_text();
  EXPECT_NE(text.find("test.render"), std::string::npos);
  std::string json = counters_json();
  EXPECT_NE(json.find("\"test.render\":9"), std::string::npos);
  EXPECT_NE(json.find("\"test.render_time\":1.5"), std::string::npos);
}

}  // namespace
}  // namespace bernoulli::support
