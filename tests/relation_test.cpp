// Direct tests of the relation views and their access-method contracts:
// properties must be honest (sortedness, denseness, search cost), and
// enumerate/search must agree with each other on every view.
#include <gtest/gtest.h>

#include "formats/formats.hpp"
#include "formats/sparse_vector.hpp"
#include "relation/array_views.hpp"
#include "relation/query.hpp"
#include "relation/sparse_vector_view.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace bernoulli::relation {
namespace {

using formats::Coo;
using formats::TripletBuilder;

Coo sample_matrix() {
  TripletBuilder b(4, 5);
  b.add(0, 1, 1.0);
  b.add(0, 4, 2.0);
  b.add(2, 0, 3.0);
  b.add(2, 3, 4.0);
  b.add(3, 3, 5.0);
  return std::move(b).build();
}

// Checks the enumerate/search contract at one level under one parent:
// every enumerated (idx, pos) is found by search; absent indices miss.
void check_level_contract(const IndexLevel& level, index_t parent,
                          index_t probe_range) {
  std::vector<std::pair<index_t, index_t>> items;
  index_t prev = -1;
  level.enumerate(parent, [&](index_t idx, index_t pos) {
    if (level.properties().sorted) { EXPECT_GT(idx, prev); }
    prev = idx;
    items.emplace_back(idx, pos);
    return true;
  });
  for (auto [idx, pos] : items) EXPECT_EQ(level.search(parent, idx), pos);
  for (index_t i = 0; i < probe_range; ++i) {
    bool enumerated = false;
    for (auto [idx, _] : items)
      if (idx == i) enumerated = true;
    if (!enumerated) { EXPECT_EQ(level.search(parent, i), -1) << "idx " << i; }
  }
}

TEST(Views, CsrContract) {
  auto csr = formats::Csr::from_coo(sample_matrix());
  CsrView v("A", csr);
  EXPECT_EQ(v.arity(), 2);
  EXPECT_TRUE(v.level(0).properties().dense);
  EXPECT_EQ(v.level(0).properties().search_cost, SearchCost::kConstant);
  EXPECT_TRUE(v.level(1).properties().sorted);
  EXPECT_FALSE(v.level(1).properties().dense);
  for (index_t i = 0; i < 4; ++i) check_level_contract(v.level(1), i, 5);
  // Values address through the leaf position.
  index_t pos = v.level(1).search(2, 3);
  ASSERT_GE(pos, 0);
  EXPECT_DOUBLE_EQ(v.value_at(pos), 4.0);
}

TEST(Views, CcsContract) {
  auto ccs = formats::Ccs::from_coo(sample_matrix());
  CcsView v("A", ccs);
  for (index_t j = 0; j < 5; ++j) check_level_contract(v.level(1), j, 4);
  index_t pos = v.level(1).search(4, 0);  // column 4, row 0
  ASSERT_GE(pos, 0);
  EXPECT_DOUBLE_EQ(v.value_at(pos), 2.0);
}

TEST(Views, CooRowLevelIsSortedNotDense) {
  Coo m = sample_matrix();  // rows {0, 2, 3} stored; row 1 empty
  CooView v("A", m);
  EXPECT_TRUE(v.level(0).properties().sorted);
  EXPECT_FALSE(v.level(0).properties().dense);
  check_level_contract(v.level(0), 0, 4);
  EXPECT_EQ(v.level(0).search(0, 1), -1);  // empty row absent
}

TEST(Views, IntervalDense) {
  IntervalView v("I", {3, 7});
  EXPECT_EQ(v.arity(), 2);
  check_level_contract(v.level(0), 0, 3);
  check_level_contract(v.level(1), 0, 7);
  EXPECT_EQ(v.level(1).search(0, 7), -1);
  EXPECT_EQ(v.level(1).search(0, -1), -1);
}

TEST(Views, DenseVectorWritable) {
  Vector x{1.0, 2.0, 3.0};
  DenseVectorView v("X", VectorView(x));
  EXPECT_TRUE(v.writable());
  v.value_add(1, 0.5);
  EXPECT_DOUBLE_EQ(x[1], 2.5);
  v.value_set(0, -1.0);
  EXPECT_DOUBLE_EQ(x[0], -1.0);

  DenseVectorView r("X", ConstVectorView(x));
  EXPECT_FALSE(r.writable());
  EXPECT_THROW(r.value_add(0, 1.0), Error);
}

TEST(Views, SparseVectorContract) {
  formats::SparseVector sv(10, {{2, 1.0}, {5, 2.0}, {9, 3.0}});
  SparseVectorView v("X", sv);
  check_level_contract(v.level(0), 0, 10);
  EXPECT_DOUBLE_EQ(v.value_at(v.level(0).search(0, 5)), 2.0);
}

TEST(Views, PermutationBothDirections) {
  PermutationView v("P", {2, 0, 1});
  // Forward: the single child of parent position i is perm[i].
  EXPECT_EQ(v.level(1).search(0, 2), 0);
  EXPECT_EQ(v.level(1).search(0, 1), -1);
  EXPECT_EQ(v.iperm()[2], 0);
  // Enumerating parent 1 yields exactly (perm[1], 1).
  int count = 0;
  v.level(1).enumerate(1, [&](index_t idx, index_t pos) {
    EXPECT_EQ(idx, 0);
    EXPECT_EQ(pos, 1);
    ++count;
    return true;
  });
  EXPECT_EQ(count, 1);
  EXPECT_THROW(PermutationView("bad", {0, 0, 1}), Error);
}

TEST(Views, EnumerateEarlyStop) {
  IntervalView v("I", {100});
  int seen = 0;
  v.level(0).enumerate(0, [&](index_t, index_t) { return ++seen < 5; });
  EXPECT_EQ(seen, 5);
}

TEST(Query, ValidateCatchesMistakes) {
  IntervalView i("I", {4, 4});
  Vector y(4, 0.0);
  DenseVectorView yv("Y", VectorView(y));

  Query ok;
  ok.vars = {"i", "j"};
  ok.relations.push_back({&i, {"i", "j"}, true, false, true});
  ok.relations.push_back({&yv, {"i"}, false, true, false});
  EXPECT_NO_THROW(ok.validate());

  Query arity_mismatch = ok;
  arity_mismatch.relations[1].vars = {"i", "j"};
  EXPECT_THROW(arity_mismatch.validate(), Error);

  Query unknown_var = ok;
  unknown_var.relations[1].vars = {"k"};
  EXPECT_THROW(unknown_var.validate(), Error);

  Query dup_var = ok;
  dup_var.vars = {"i", "i"};
  EXPECT_THROW(dup_var.validate(), Error);

  Query uncovered;
  uncovered.vars = {"i", "j"};
  uncovered.relations.push_back({&yv, {"i"}, false, true, false});
  EXPECT_THROW(uncovered.validate(), Error);
}

TEST(Views, ValueExprRendersArrayAccess) {
  auto csr = formats::Csr::from_coo(sample_matrix());
  CsrView v("A", csr);
  EXPECT_EQ(v.value_expr("p"), "A_VALS[p]");
  Vector x(3, 0.0);
  DenseVectorView xv("X", VectorView(x));
  EXPECT_EQ(xv.value_expr("j"), "X[j]");
}

}  // namespace
}  // namespace bernoulli::relation
