// Vector redistribution between distribution relations.
#include <gtest/gtest.h>

#include "distrib/distribution.hpp"
#include "spmd/redistribute.hpp"
#include "support/rng.hpp"

namespace bernoulli::spmd {
namespace {

using distrib::BlockDist;
using distrib::CyclicDist;
using distrib::Distribution;
using distrib::IndirectDist;

// Scatter a global vector under `d`, run `fn` per rank, gather back.
Vector scatter_run_gather(
    const Vector& global, const Distribution& from, const Distribution& to,
    int P) {
  runtime::Machine machine(P);
  Vector out(global.size(), 0.0);
  std::mutex mu;
  machine.run([&](runtime::Process& p) {
    auto mine = from.owned_indices(p.rank());
    Vector local(mine.size());
    for (std::size_t k = 0; k < mine.size(); ++k)
      local[k] = global[static_cast<std::size_t>(mine[k])];
    Vector moved = redistribute(p, local, from, to, /*tag=*/11);
    auto dest = to.owned_indices(p.rank());
    std::lock_guard<std::mutex> lk(mu);
    for (std::size_t k = 0; k < dest.size(); ++k)
      out[static_cast<std::size_t>(dest[k])] = moved[k];
  });
  return out;
}

TEST(Redistribute, BlockToCyclicPreservesValues) {
  const index_t n = 37;
  const int P = 4;
  SplitMix64 rng(1);
  Vector global(static_cast<std::size_t>(n));
  for (auto& v : global) v = rng.next_double(-5, 5);

  BlockDist from(n, P);
  CyclicDist to(n, P);
  EXPECT_EQ(scatter_run_gather(global, from, to, P), global);
}

TEST(Redistribute, ToRandomIndirectAndBack) {
  const index_t n = 50;
  const int P = 3;
  SplitMix64 rng(2);
  Vector global(static_cast<std::size_t>(n));
  for (auto& v : global) v = rng.next_double(-1, 1);
  std::vector<int> map(static_cast<std::size_t>(n));
  for (auto& m : map) m = static_cast<int>(rng.next_below(P));

  BlockDist block(n, P);
  IndirectDist indirect(map, P);
  EXPECT_EQ(scatter_run_gather(global, block, indirect, P), global);
  EXPECT_EQ(scatter_run_gather(global, indirect, block, P), global);
}

TEST(Redistribute, IdentityRedistributionIsFree) {
  const index_t n = 24;
  const int P = 3;
  BlockDist d(n, P);
  Vector global(static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < global.size(); ++i)
    global[i] = static_cast<value_t>(i);

  runtime::Machine machine(P);
  auto reports = machine.run([&](runtime::Process& p) {
    auto mine = d.owned_indices(p.rank());
    Vector local(mine.size());
    for (std::size_t k = 0; k < mine.size(); ++k)
      local[k] = global[static_cast<std::size_t>(mine[k])];
    Vector moved = redistribute(p, local, d, d, 12);
    EXPECT_EQ(moved, local);
  });
  for (const auto& r : reports) EXPECT_EQ(r.stats.bytes, 0);
}

TEST(Redistribute, RejectsSizeMismatch) {
  runtime::Machine machine(2);
  EXPECT_THROW(machine.run([&](runtime::Process& p) {
                 BlockDist a(10, 2), b(11, 2);
                 Vector local(static_cast<std::size_t>(a.local_size(p.rank())), 0.0);
                 redistribute(p, local, a, b, 13);
               }),
               Error);
}

}  // namespace
}  // namespace bernoulli::spmd
