// Simulated machine: message semantics, collectives, virtual-clock
// happens-before, and statistics.
#include <gtest/gtest.h>

#include <numeric>

#include "runtime/machine.hpp"
#include "support/error.hpp"

namespace bernoulli::runtime {
namespace {

TEST(Machine, PingPong) {
  Machine m(2);
  std::vector<int> got;
  m.run([&](Process& p) {
    if (p.rank() == 0) {
      std::vector<int> data{1, 2, 3};
      p.send<int>(1, 7, data);
      auto back = p.recv<int>(1, 8);
      got = back;
    } else {
      auto data = p.recv<int>(0, 7);
      for (int& v : data) v *= 10;
      p.send<int>(0, 8, data);
    }
  });
  EXPECT_EQ(got, (std::vector<int>{10, 20, 30}));
}

TEST(Machine, TagAndSourceMatching) {
  // Two messages from the same source with different tags must be
  // received by tag, regardless of send order.
  Machine m(2);
  int first = 0, second = 0;
  m.run([&](Process& p) {
    if (p.rank() == 0) {
      p.send_value<int>(1, /*tag=*/5, 55);
      p.send_value<int>(1, /*tag=*/4, 44);
    } else {
      first = p.recv_value<int>(0, 4);
      second = p.recv_value<int>(0, 5);
    }
  });
  EXPECT_EQ(first, 44);
  EXPECT_EQ(second, 55);
}

TEST(Machine, SameTagIsFifo) {
  Machine m(2);
  std::vector<int> order;
  m.run([&](Process& p) {
    if (p.rank() == 0) {
      for (int k = 0; k < 5; ++k) p.send_value<int>(1, 1, k);
    } else {
      for (int k = 0; k < 5; ++k) order.push_back(p.recv_value<int>(0, 1));
    }
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Machine, SelfSendWorks) {
  Machine m(1);
  int got = 0;
  m.run([&](Process& p) {
    p.send_value<int>(0, 3, 42);
    got = p.recv_value<int>(0, 3);
  });
  EXPECT_EQ(got, 42);
}

TEST(Machine, AllreduceSum) {
  Machine m(8);
  std::vector<double> results(8, 0.0);
  m.run([&](Process& p) {
    results[static_cast<std::size_t>(p.rank())] =
        p.allreduce_sum(static_cast<double>(p.rank() + 1));
  });
  for (double r : results) EXPECT_DOUBLE_EQ(r, 36.0);  // 1+..+8
}

TEST(Machine, AllreduceMax) {
  Machine m(5);
  std::vector<double> results(5, 0.0);
  m.run([&](Process& p) {
    results[static_cast<std::size_t>(p.rank())] =
        p.allreduce_max(static_cast<double>((p.rank() * 7) % 5));
  });
  for (double r : results) EXPECT_DOUBLE_EQ(r, 4.0);
}

TEST(Machine, RepeatedCollectivesStayInSync) {
  Machine m(4);
  std::vector<double> sums(4, 0.0);
  m.run([&](Process& p) {
    double acc = 0;
    for (int round = 0; round < 50; ++round)
      acc += p.allreduce_sum(static_cast<double>(round + p.rank()));
    sums[static_cast<std::size_t>(p.rank())] = acc;
  });
  for (double s : sums) EXPECT_DOUBLE_EQ(s, sums[0]);
}

TEST(Machine, Alltoallv) {
  const int P = 4;
  Machine m(P);
  std::vector<std::vector<std::vector<int>>> received(P);
  m.run([&](Process& p) {
    std::vector<std::vector<int>> out(P);
    for (int q = 0; q < P; ++q) out[static_cast<std::size_t>(q)] = {p.rank() * 10 + q};
    received[static_cast<std::size_t>(p.rank())] = p.alltoallv(out, 9);
  });
  for (int me = 0; me < P; ++me)
    for (int q = 0; q < P; ++q)
      EXPECT_EQ(received[static_cast<std::size_t>(me)][static_cast<std::size_t>(q)],
                (std::vector<int>{q * 10 + me}));
}

TEST(Machine, Allgatherv) {
  const int P = 3;
  Machine m(P);
  std::vector<std::vector<std::vector<index_t>>> gathered(P);
  m.run([&](Process& p) {
    std::vector<index_t> mine(static_cast<std::size_t>(p.rank() + 1),
                              static_cast<index_t>(p.rank()));
    gathered[static_cast<std::size_t>(p.rank())] =
        p.allgatherv<index_t>(mine, 2);
  });
  for (int me = 0; me < P; ++me)
    for (int q = 0; q < P; ++q)
      EXPECT_EQ(gathered[static_cast<std::size_t>(me)][static_cast<std::size_t>(q)].size(),
                static_cast<std::size_t>(q + 1));
}

TEST(Machine, VirtualTimeHappensBefore) {
  // Rank 1 receives a message sent after rank 0 burned compute time; its
  // virtual clock must be at least rank 0's send-time + transfer.
  Machine m(2);
  std::vector<double> vt(2, 0.0);
  m.run([&](Process& p) {
    if (p.rank() == 0) {
      volatile double sink = 0;
      for (int i = 0; i < 3000000; ++i) sink = sink + 1.0;
      p.charge_seconds(1.0);  // plus explicit modeled work
      std::vector<double> payload(1000, 1.0);
      p.send<double>(1, 1, payload);
      vt[0] = p.virtual_time();
    } else {
      (void)p.recv<double>(0, 1);
      vt[1] = p.virtual_time();
    }
  });
  EXPECT_GE(vt[0], 1.0);
  EXPECT_GE(vt[1], 1.0);  // inherited through the message
}

TEST(Machine, MessageCostCharged) {
  CostModel cm;
  cm.latency_s = 0.25;
  cm.bytes_per_s = 1e9;
  Machine m(2, cm);
  std::vector<double> vt(2, 0.0);
  auto reports = m.run([&](Process& p) {
    if (p.rank() == 0)
      p.send_value<int>(1, 1, 5);
    else
      (void)p.recv_value<int>(0, 1);
  });
  // Sender pays latency; receiver inherits arrival = send + charge.
  EXPECT_GE(reports[0].virtual_time, 0.25);
  EXPECT_GE(reports[1].virtual_time, 0.5);
}

TEST(Machine, StatsCountMessagesAndBytes) {
  Machine m(2);
  auto reports = m.run([&](Process& p) {
    if (p.rank() == 0) {
      std::vector<double> payload(10, 0.0);
      p.send<double>(1, 1, payload);
      p.send<double>(1, 2, payload);
    } else {
      (void)p.recv<double>(0, 1);
      (void)p.recv<double>(0, 2);
    }
    p.barrier();
  });
  EXPECT_EQ(reports[0].stats.messages, 2);
  EXPECT_EQ(reports[0].stats.bytes, 160);
  EXPECT_EQ(reports[1].stats.messages, 0);
  EXPECT_GE(reports[0].stats.collectives, 1);
}

TEST(Machine, SelfSendsAreFree) {
  Machine m(1);
  auto reports = m.run([&](Process& p) {
    std::vector<double> payload(1000, 0.0);
    p.send<double>(0, 1, payload);
    (void)p.recv<double>(0, 1);
  });
  EXPECT_EQ(reports[0].stats.messages, 0);
  EXPECT_EQ(reports[0].stats.bytes, 0);
}

TEST(Machine, ExceptionPropagates) {
  Machine m(2);
  EXPECT_THROW(m.run([&](Process& p) {
                 if (p.rank() == 1) throw Error("rank 1 failed");
               }),
               Error);
}

TEST(Machine, ManyRanks) {
  // 64 threads on one core: the Table-2 configuration must at least be
  // functionally sound.
  const int P = 64;
  Machine m(P);
  std::vector<double> results(P, 0.0);
  m.run([&](Process& p) {
    // Ring shift: send to the right, receive from the left.
    p.send_value<double>((p.rank() + 1) % P, 1, static_cast<double>(p.rank()));
    double left = p.recv_value<double>((p.rank() + P - 1) % P, 1);
    results[static_cast<std::size_t>(p.rank())] = left;
  });
  for (int r = 0; r < P; ++r)
    EXPECT_DOUBLE_EQ(results[static_cast<std::size_t>(r)],
                     static_cast<double>((r + P - 1) % P));
}

}  // namespace
}  // namespace bernoulli::runtime
