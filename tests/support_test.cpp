#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <set>
#include <string>

#include "support/error.hpp"
#include "support/json_reader.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/text_table.hpp"
#include "support/thread_pool.hpp"
#include "support/timer.hpp"

namespace bernoulli {
namespace {

TEST(Error, CheckThrowsWithLocation) {
  try {
    BERNOULLI_CHECK_MSG(1 == 2, "one is not " << 2);
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("one is not 2"), std::string::npos);
  }
}

TEST(Error, CheckPassesSilently) {
  EXPECT_NO_THROW(BERNOULLI_CHECK(2 + 2 == 4));
}

TEST(Rng, Deterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, NextBelowInRange) {
  SplitMix64 rng(7);
  for (int i = 0; i < 10000; ++i) {
    auto v = rng.next_below(13);
    EXPECT_LT(v, 13u);
  }
}

TEST(Rng, NextBelowCoversAllResidues) {
  SplitMix64 rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, DoubleInUnitInterval) {
  SplitMix64 rng(3);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, DoubleRangeRespected) {
  SplitMix64 rng(5);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.next_double(-2.0, 3.0);
    EXPECT_GE(d, -2.0);
    EXPECT_LT(d, 3.0);
  }
}

TEST(Stats, MeanMinMax) {
  RunningStats s;
  s.add(1.0);
  s.add(2.0);
  s.add(3.0);
  EXPECT_EQ(s.count(), 3);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 1.0);
}

TEST(Stats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(TextTable, AlignsColumns) {
  TextTable t({"Name", "MFlops"});
  t.new_row();
  t.add("small");
  t.add(123.456, 1);
  t.new_row();
  t.add("a-very-long-name");
  t.add(7.0, 1);
  std::string out = t.str();
  EXPECT_NE(out.find("Name"), std::string::npos);
  EXPECT_NE(out.find("123.5"), std::string::npos);
  EXPECT_NE(out.find("a-very-long-name"), std::string::npos);
  // Every line has the same length (alignment invariant).
  std::size_t prev = std::string::npos;
  std::size_t pos = 0;
  while (pos < out.size()) {
    std::size_t nl = out.find('\n', pos);
    std::size_t len = nl - pos;
    if (prev != std::string::npos) { EXPECT_EQ(len, prev); }
    prev = len;
    pos = nl + 1;
  }
}

TEST(TextTable, RejectsOverfullRow) {
  TextTable t({"A"});
  t.new_row();
  t.add("x");
  EXPECT_THROW(t.add("y"), Error);
}

// Where in the input did the parser give up? Every malformed document
// must be rejected with a 1-based line/column position pointing at the
// offending byte — the analysis tools parse user-supplied report/trace
// files, so "JSON parse error" alone is not actionable.
TEST(JsonReader, MalformedInputsReportLineAndColumn) {
  struct Case {
    const char* label;
    const char* text;
    const char* where;  // expected "line L column C" substring
  };
  const Case cases[] = {
      {"truncated object", "{\"a\": 1,", "line 1 column 9"},
      {"truncated array", "[1, 2", "line 1 column 6"},
      {"truncated string", "\"abc", "line 1 column 5"},
      {"bad escape", "\"a\\q\"", "line 1 column 4"},
      {"bare control char", "\"a\tb\"", "line 1 column 3"},
      {"trailing garbage", "{\"a\": 1} x", "line 1 column 10"},
      {"missing colon", "{\"a\" 1}", "line 1 column 6"},
      {"missing comma", "[1 2]", "line 1 column 4"},
      {"leading zero", "01", "line 1 column 2"},
      {"lone minus", "-", "line 1 column 2"},
      {"bad literal", "tru", "line 1 column 1"},
      {"empty input", "", "line 1 column 1"},
      {"error on later line", "{\n  \"a\": 1,\n  \"b\": }\n}",
       "line 3 column 8"},
      // \uXXXX surrogate handling: every malformed pair shape must be
      // rejected with a position, never silently decoded or crashed on.
      {"lone high surrogate", "\"\\uD83D\"", "line 1 column 8"},
      {"high surrogate at EOF", "\"\\uD83D", "line 1 column 8"},
      {"low surrogate first", "\"\\uDC00\"", "line 1 column 8"},
      {"truncated \\u hex at EOF", "\"\\u12", "line 1 column 4"},
      {"high surrogate with bad low", "\"\\uD83D\\u0041\"",
       "line 1 column 14"},
      {"high surrogate then literal", "\"\\uD800ab\"", "line 1 column 8"},
  };
  for (const Case& c : cases) {
    try {
      (void)support::json_parse(c.text);
      FAIL() << c.label << ": expected a parse error";
    } catch (const Error& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("JSON parse error"), std::string::npos) << c.label;
      EXPECT_NE(what.find(c.where), std::string::npos)
          << c.label << ": got \"" << what << '"';
    }
  }
}

TEST(JsonReader, WellFormedInputStillParses) {
  support::JsonValue v = support::json_parse(
      "{\"s\": \"a\\u0041b\", \"n\": [-1.5e2, 0], \"t\": true, "
      "\"nothing\": null}");
  EXPECT_EQ(v.find("s")->as_string(), "aAb");
  EXPECT_EQ(v.find("n")->items[0].as_number(), -150.0);
  EXPECT_TRUE(v.find("t")->boolean);
  EXPECT_EQ(v.find("nothing")->type, support::JsonValue::Type::kNull);
}

// Back-to-back jobs are the pool's hard case: a worker that wakes late
// for job N must not pull a slot after job N completed, or it would
// invoke job N's destroyed body with job N+1's slot (a use-after-scope
// the linked executor's bench loop hit in production) and corrupt job
// N+1's completion count. Hammer many short jobs with uneven slot work
// and assert every slot of every job ran exactly once.
TEST(ThreadPool, BackToBackJobsRunEverySlotExactlyOnce) {
  support::ThreadPool pool(4);
  constexpr int kJobs = 200;
  constexpr int kSlots = 8;
  for (int j = 0; j < kJobs; ++j) {
    std::array<std::atomic<int>, kSlots> ran{};
    pool.run_slots(kSlots, [&](int slot) {
      // Uneven work so slot hand-out interleaves differently per job.
      volatile double sink = 0;
      for (int i = 0; i < (slot % 3) * 500; ++i) sink = sink + 1.0;
      ran[static_cast<std::size_t>(slot)].fetch_add(1);
    });
    for (int s = 0; s < kSlots; ++s)
      ASSERT_EQ(ran[static_cast<std::size_t>(s)].load(), 1)
          << "job " << j << " slot " << s;
  }
}

TEST(ThreadPool, PropagatesFirstBodyException) {
  support::ThreadPool pool(2);
  EXPECT_THROW(pool.run_slots(4,
                              [&](int slot) {
                                if (slot == 2) throw Error("slot two");
                              }),
               Error);
  // The pool stays usable after a throwing job.
  std::atomic<int> n{0};
  pool.run_slots(3, [&](int) { n.fetch_add(1); });
  EXPECT_EQ(n.load(), 3);
}

TEST(Timer, WallTimeAdvances) {
  WallTimer t;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + 1.0;
  EXPECT_GE(t.seconds(), 0.0);
}

TEST(Timer, ThreadCpuTimeAdvancesUnderWork) {
  ThreadCpuTimer t;
  volatile double sink = 0;
  for (int i = 0; i < 5000000; ++i) sink = sink + 1.0;
  EXPECT_GT(t.seconds(), 0.0);
}

}  // namespace
}  // namespace bernoulli
