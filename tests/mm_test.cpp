#include <gtest/gtest.h>

#include <cstdio>

#include "mm/matrix_market.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace bernoulli::mm {
namespace {

using formats::Coo;
using formats::TripletBuilder;

TEST(MatrixMarket, ReadsCoordinateGeneral) {
  Coo a = read_string(
      "%%MatrixMarket matrix coordinate real general\n"
      "% a comment\n"
      "3 4 3\n"
      "1 1 2.5\n"
      "3 4 -1\n"
      "2 2 7\n");
  EXPECT_EQ(a.rows(), 3);
  EXPECT_EQ(a.cols(), 4);
  EXPECT_EQ(a.nnz(), 3);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 2.5);
  EXPECT_DOUBLE_EQ(a.at(2, 3), -1.0);
  EXPECT_DOUBLE_EQ(a.at(1, 1), 7.0);
}

TEST(MatrixMarket, ExpandsSymmetric) {
  Coo a = read_string(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "3 3 3\n"
      "1 1 1\n"
      "2 1 5\n"
      "3 3 2\n");
  EXPECT_EQ(a.nnz(), 4);  // off-diagonal mirrored
  EXPECT_DOUBLE_EQ(a.at(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(a.at(1, 0), 5.0);
  EXPECT_TRUE(a.is_symmetric());
}

TEST(MatrixMarket, ReadsPattern) {
  Coo a = read_string(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 2\n"
      "1 2\n"
      "2 1\n");
  EXPECT_DOUBLE_EQ(a.at(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(a.at(1, 0), 1.0);
}

TEST(MatrixMarket, ReadsArray) {
  Coo a = read_string(
      "%%MatrixMarket matrix array real general\n"
      "2 2\n"
      "1\n0\n0\n4\n");
  EXPECT_EQ(a.nnz(), 2);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(a.at(1, 1), 4.0);
}

TEST(MatrixMarket, RejectsMalformed) {
  EXPECT_THROW(read_string("no banner\n1 1 0\n"), Error);
  EXPECT_THROW(read_string("%%MatrixMarket matrix coordinate real general\n"
                           "2 2 1\n"
                           "3 1 1.0\n"),
               Error);  // out of range
  EXPECT_THROW(read_string("%%MatrixMarket matrix coordinate real general\n"
                           "2 2 2\n"
                           "1 1 1.0\n"),
               Error);  // truncated
  EXPECT_THROW(read_string("%%MatrixMarket matrix coordinate complex general\n"
                           "1 1 0\n"),
               Error);  // unsupported field
}

TEST(MatrixMarket, GeneralRoundTrip) {
  SplitMix64 rng(9);
  TripletBuilder b(20, 15);
  for (int k = 0; k < 70; ++k)
    b.add(rng.next_index(20), rng.next_index(15), rng.next_double(-3.0, 3.0));
  Coo a = std::move(b).build();
  Coo back = read_string(write_string(a));
  EXPECT_EQ(back, a);
}

TEST(MatrixMarket, SymmetricRoundTripHalvesStorage) {
  TripletBuilder b(4, 4);
  for (index_t i = 0; i < 4; ++i) b.add(i, i, static_cast<value_t>(i + 1));
  b.add(2, 0, 5.0);
  b.add(0, 2, 5.0);
  Coo a = std::move(b).build();
  std::string text = write_string(a, /*symmetric=*/true);
  // The written file holds 5 entries (4 diagonal + 1 lower).
  EXPECT_NE(text.find("4 4 5"), std::string::npos);
  EXPECT_EQ(read_string(text), a);
}

TEST(MatrixMarket, FileRoundTrip) {
  SplitMix64 rng(21);
  TripletBuilder b(30, 30);
  for (int k = 0; k < 120; ++k)
    b.add(rng.next_index(30), rng.next_index(30), rng.next_double(-2.0, 2.0));
  Coo a = std::move(b).build();
  std::string path = ::testing::TempDir() + "bernoulli_mm_roundtrip.mtx";
  write_file(path, a);
  EXPECT_EQ(read_file(path), a);
  std::remove(path.c_str());
}

TEST(MatrixMarket, ReadFileMissingThrows) {
  EXPECT_THROW(read_file("/nonexistent/definitely/missing.mtx"), Error);
}

TEST(MatrixMarket, WriteSymmetricRejectsUnsymmetric) {
  TripletBuilder b(2, 2);
  b.add(0, 1, 1.0);
  Coo a = std::move(b).build();
  std::ostringstream out;
  EXPECT_THROW(write(out, a, /*symmetric=*/true), Error);
}

}  // namespace
}  // namespace bernoulli::mm
