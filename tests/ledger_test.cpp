// The cross-run perf ledger (bench/ledger.jsonl): append-only JSONL of
// run-report documents, read back oldest-first, trended, and regressed
// against a committed baseline. The regress semantics here are exactly
// what `bernoulli_report regress` runs in CI: newest ledger entry vs the
// baseline, non-zero on any metric worse than tolerance — including a
// synthetically slowed entry, the acceptance case for the gate.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "analysis/report.hpp"
#include "support/json_reader.hpp"

namespace bernoulli::analysis {
namespace {

using support::json_parse;

struct TempFile {
  std::string path;
  explicit TempFile(std::string p) : path(std::move(p)) {}
  ~TempFile() { std::remove(path.c_str()); }
};

std::string run_doc(double seconds, double speedup) {
  RunReport r("ledger_test");
  r.metric("exec.case.seconds_linked", seconds);
  r.metric("exec.case.speedup_linked_over_interpreted", speedup);
  return r.json();
}

TEST(Ledger, AppendReadRoundTripsOldestFirst) {
  TempFile f(::testing::TempDir() + "/ledger_roundtrip.jsonl");
  ledger_append(f.path, run_doc(2.0, 10.0));
  ledger_append(f.path, run_doc(1.0, 20.0));

  std::vector<support::JsonValue> entries = ledger_read(f.path);
  ASSERT_EQ(entries.size(), 2u);
  DiffResult d = diff_reports(entries[0], entries[1], /*tolerance=*/0.25);
  ASSERT_EQ(d.compared, 2);
  // Entry order is oldest->newest: the second entry halved seconds and
  // doubled speedup, so nothing regressed in that direction.
  EXPECT_EQ(d.regressions, 0);
}

TEST(Ledger, AppendValidatesAndStoresOneLinePerEntry) {
  TempFile f(::testing::TempDir() + "/ledger_oneline.jsonl");
  EXPECT_THROW(ledger_append(f.path, "{not json"), std::exception);
  // A failed append must not leave a partial line behind.
  std::ifstream gone(f.path);
  EXPECT_TRUE(!gone.good() || gone.peek() == std::ifstream::traits_type::eof());

  ledger_append(f.path, run_doc(1.0, 10.0));  // pretty-printed, multi-line
  std::ifstream in(f.path);
  int lines = 0;
  for (std::string line; std::getline(in, line);) ++lines;
  EXPECT_EQ(lines, 1);
}

TEST(Ledger, ReadRejectsCorruptLines) {
  TempFile f(::testing::TempDir() + "/ledger_corrupt.jsonl");
  ledger_append(f.path, run_doc(1.0, 10.0));
  {
    std::ofstream out(f.path, std::ios::app);
    out << "{broken\n";
  }
  // A corrupt ledger fails the gate rather than silently skipping entries.
  EXPECT_THROW(ledger_read(f.path), std::exception);
}

TEST(Ledger, TrendShowsTrajectoryAndRelativeChange) {
  TempFile f(::testing::TempDir() + "/ledger_trend.jsonl");
  ledger_append(f.path, run_doc(2.0, 10.0));
  ledger_append(f.path, run_doc(1.0, 15.0));

  const std::string t = ledger_trend_text(ledger_read(f.path), "speedup");
  EXPECT_NE(t.find("speedup_linked_over_interpreted"), std::string::npos);
  EXPECT_NE(t.find("2 entries"), std::string::npos);
  // Filter applies: the seconds metric is not in the speedup trend.
  EXPECT_EQ(t.find("seconds_linked"), std::string::npos);
}

TEST(Ledger, RegressPassesOnIdenticalEntryAndFailsOnSlowedEntry) {
  const support::JsonValue baseline = json_parse(run_doc(1.0, 16.0));

  // Newest entry identical to the baseline: gate passes.
  TempFile same(::testing::TempDir() + "/ledger_same.jsonl");
  ledger_append(same.path, run_doc(1.0, 16.0));
  DiffResult ok = diff_reports(baseline, ledger_read(same.path).back(),
                               /*tolerance=*/0.25);
  EXPECT_GT(ok.compared, 0);
  EXPECT_TRUE(ok.ok());

  // Newest entry synthetically slowed (2x seconds, halved speedup): both
  // metrics regress beyond a 25% tolerance and the gate must trip.
  TempFile slow(::testing::TempDir() + "/ledger_slow.jsonl");
  ledger_append(slow.path, run_doc(1.0, 16.0));  // older, healthy entry
  ledger_append(slow.path, run_doc(2.0, 8.0));   // newest = slowed
  DiffResult bad = diff_reports(baseline, ledger_read(slow.path).back(),
                                /*tolerance=*/0.25);
  EXPECT_EQ(bad.compared, 2);
  EXPECT_EQ(bad.regressions, 2);
  EXPECT_FALSE(bad.ok());
}

}  // namespace
}  // namespace bernoulli::analysis
