// Tracer overhead budget: a traced linked run may cost at most a small,
// fixed amount over an untraced run. The linked engine emits exactly one
// "execute" span per serial run, so the budget is per-span: best-of-k
// traced minus best-of-k untraced must stay under a generous ceiling
// (50us/span — two orders of magnitude above the expected cost, so the
// test only trips on a real regression such as a lock or an allocation
// storm on the span path, not on scheduler jitter).
#include <gtest/gtest.h>

#include <chrono>
#include <memory>

#include "compiler/link.hpp"
#include "compiler/loopnest.hpp"
#include "formats/formats.hpp"
#include "support/rng.hpp"
#include "support/trace.hpp"

namespace bernoulli::compiler {
namespace {

struct Spmv {
  formats::Csr csr;
  Vector x, y;
  Bindings bindings;
  CompiledKernel kernel;
};

std::unique_ptr<Spmv> make_spmv() {
  SplitMix64 rng(43);
  formats::TripletBuilder b(80, 80);
  for (index_t k = 0; k < 800; ++k)
    b.add(rng.next_index(80), rng.next_index(80), rng.next_double(-1, 1));
  auto s = std::make_unique<Spmv>();
  s->csr = formats::Csr::from_coo(std::move(b).build());
  s->x.assign(80, 1.0);
  s->y.assign(80, 0.0);
  s->bindings.bind_csr("A", s->csr);
  s->bindings.bind_dense_vector("X", ConstVectorView(s->x));
  s->bindings.bind_dense_vector("Y", VectorView(s->y));
  LoopNest nest{{{"i", 80}, {"j", 80}},
                {{"Y", {"i"}}, {{"A", {"i", "j"}}, {"X", {"j"}}}, 1.0}};
  s->kernel = compile(nest, s->bindings);
  return s;
}

// Best-of-k wall time of one runner.run(mac), in nanoseconds. The minimum
// over k runs is the stable statistic: noise only ever adds time.
long long best_run_ns(LinkedRunner& runner, const LinkedMac& mac, int k) {
  long long best = -1;
  for (int i = 0; i < k; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    runner.run(mac);
    const auto t1 = std::chrono::steady_clock::now();
    const long long ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count();
    if (best < 0 || ns < best) best = ns;
  }
  return best;
}

TEST(TraceOverhead, TracedLinkedRunStaysWithinPerSpanBudget) {
  auto s = make_spmv();
  LinkedRunner runner(link_plan(s->kernel.plan(), s->kernel.query()));
  LinkedMac mac = link_mac(s->kernel.query(), 1, {2, 3});

  constexpr int kRuns = 25;
  best_run_ns(runner, mac, 5);  // warm caches and the metrics registry
  const long long untraced = best_run_ns(runner, mac, kRuns);

  support::trace_start();
  const long long traced = best_run_ns(runner, mac, kRuns);
  support::trace_stop();

  // One span per serial run; 50'000 ns is the (deliberately lax) ceiling.
  const long long overhead = traced - untraced;
  EXPECT_LT(overhead, 50'000)
      << "tracing added " << overhead << " ns per run (untraced best "
      << untraced << " ns, traced best " << traced << " ns)";
}

}  // namespace
}  // namespace bernoulli::compiler
