// Per-format unit tests plus parameterized cross-format property sweeps:
// every format must (1) round-trip through COO, (2) agree with the dense
// reference on lookups, (3) produce the dense-reference SpMV result.
#include <gtest/gtest.h>

#include <cctype>
#include <cmath>

#include "formats/formats.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace bernoulli::formats {
namespace {

// The 6x6 example matrix of the paper's Fig. 1 (values 1..9, column 4 and
// column 0 empty is not the case there; we use the exact figure layout:
// nonzeros at the positions drawn, with columns 2 and 4 empty to exercise
// CCCS column compression).
Coo figure1_matrix() {
  TripletBuilder b(6, 6);
  b.add(0, 0, 1.0);
  b.add(2, 0, 2.0);
  b.add(5, 0, 3.0);
  b.add(1, 1, 4.0);
  b.add(3, 3, 5.0);
  b.add(4, 3, 6.0);
  b.add(0, 5, 7.0);
  b.add(2, 5, 8.0);
  b.add(4, 5, 9.0);
  return std::move(b).build();
}

Coo random_matrix(index_t rows, index_t cols, index_t nnz, std::uint64_t seed) {
  SplitMix64 rng(seed);
  TripletBuilder b(rows, cols);
  for (index_t k = 0; k < nnz; ++k)
    b.add(rng.next_index(rows), rng.next_index(cols),
          rng.next_double(-1.0, 1.0));
  return std::move(b).build();
}

TEST(Coo, CanonicalizesAndSumsDuplicates) {
  TripletBuilder b(3, 3);
  b.add(2, 2, 1.0);
  b.add(0, 0, 1.0);
  b.add(2, 2, 2.5);
  b.add(0, 1, -1.0);
  Coo a = std::move(b).build();
  EXPECT_EQ(a.nnz(), 3);
  EXPECT_DOUBLE_EQ(a.at(2, 2), 3.5);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(a.at(0, 1), -1.0);
  EXPECT_DOUBLE_EQ(a.at(1, 1), 0.0);
  a.validate();
}

TEST(Coo, RejectsOutOfRangeEntry) {
  TripletBuilder b(2, 2);
  b.add(2, 0, 1.0);
  EXPECT_THROW(std::move(b).build(), Error);
}

TEST(Coo, RowLengths) {
  Coo a = figure1_matrix();
  auto len = a.row_lengths();
  EXPECT_EQ(len[0], 2);
  EXPECT_EQ(len[1], 1);
  EXPECT_EQ(len[5], 1);
  EXPECT_EQ(a.row_nnz(4), 2);
}

TEST(Coo, TransposeInvolution) {
  Coo a = random_matrix(17, 11, 60, 1);
  EXPECT_EQ(a.transposed().transposed(), a);
}

TEST(Coo, SymmetryDetection) {
  TripletBuilder b(3, 3);
  b.add(0, 1, 2.0);
  b.add(1, 0, 2.0);
  b.add(2, 2, 1.0);
  EXPECT_TRUE(std::move(b).build().is_symmetric());

  TripletBuilder c(3, 3);
  c.add(0, 1, 2.0);
  EXPECT_FALSE(std::move(c).build().is_symmetric());
}

TEST(Csr, Figure1RowAccess) {
  Csr a = Csr::from_coo(figure1_matrix());
  EXPECT_EQ(a.nnz(), 9);
  auto r0 = a.row_cols(0);
  ASSERT_EQ(r0.size(), 2u);
  EXPECT_EQ(r0[0], 0);
  EXPECT_EQ(r0[1], 5);
  EXPECT_DOUBLE_EQ(a.at(4, 5), 9.0);
  EXPECT_DOUBLE_EQ(a.at(4, 4), 0.0);
}

TEST(Ccs, MatchesPaperFigure1Layout) {
  // Fig. 1(b): CCS of the example matrix. Column 0 holds rows {0,2,5}
  // with values {1,2,3}.
  Ccs a = Ccs::from_coo(figure1_matrix());
  auto c0r = a.col_rows(0);
  ASSERT_EQ(c0r.size(), 3u);
  EXPECT_EQ(c0r[0], 0);
  EXPECT_EQ(c0r[1], 2);
  EXPECT_EQ(c0r[2], 5);
  EXPECT_DOUBLE_EQ(a.col_vals(0)[2], 3.0);
  // Empty columns still exist in CCS (zero-length sections).
  EXPECT_EQ(a.col_rows(2).size(), 0u);
  EXPECT_EQ(a.col_rows(4).size(), 0u);
}

TEST(Cccs, CompressesEmptyColumns) {
  // Fig. 1(c): CCCS does not store the zero columns; COLIND lists stored
  // column indices.
  Cccs a = Cccs::from_coo(figure1_matrix());
  EXPECT_EQ(a.stored_cols(), 4);
  auto ci = a.colind();
  EXPECT_EQ(ci[0], 0);
  EXPECT_EQ(ci[1], 1);
  EXPECT_EQ(ci[2], 3);
  EXPECT_EQ(ci[3], 5);
  EXPECT_EQ(a.find_stored_col(4), -1);
  EXPECT_EQ(a.find_stored_col(3), 2);
  EXPECT_DOUBLE_EQ(a.at(4, 3), 6.0);
  EXPECT_DOUBLE_EQ(a.at(4, 4), 0.0);
}

TEST(Dia, TridiagonalUsesThreeDiagonals) {
  TripletBuilder b(5, 5);
  for (index_t i = 0; i < 5; ++i) {
    b.add(i, i, 2.0);
    if (i > 0) b.add(i, i - 1, -1.0);
    if (i < 4) b.add(i, i + 1, -1.0);
  }
  Dia a = Dia::from_coo(std::move(b).build());
  EXPECT_EQ(a.num_diagonals(), 3);
  EXPECT_EQ(a.offsets()[0], -1);
  EXPECT_EQ(a.offsets()[1], 0);
  EXPECT_EQ(a.offsets()[2], 1);
  EXPECT_DOUBLE_EQ(a.at(3, 2), -1.0);
  EXPECT_DOUBLE_EQ(a.at(3, 1), 0.0);
}

TEST(Dia, SkylineStoresOnlyBetweenFirstAndLast) {
  // One diagonal with nonzeros at rows 3 and 7 only: the skyline keeps
  // rows 3..7 (5 slots), not the full diagonal.
  TripletBuilder b(10, 10);
  b.add(3, 3, 1.0);
  b.add(7, 7, 2.0);
  Dia a = Dia::from_coo(std::move(b).build());
  EXPECT_EQ(a.num_diagonals(), 1);
  EXPECT_EQ(a.diag_len(0), 5);
  EXPECT_EQ(a.first()[0], 3);
  EXPECT_DOUBLE_EQ(a.at(5, 5), 0.0);  // interior zero slot
  EXPECT_DOUBLE_EQ(a.at(7, 7), 2.0);
}

TEST(Ell, WidthIsMaxRowLength) {
  Ell a = Ell::from_coo(figure1_matrix());
  EXPECT_EQ(a.width(), 2);
  EXPECT_EQ(a.nnz(), 9);
  EXPECT_EQ(a.padded_size(), 12);
  EXPECT_DOUBLE_EQ(a.at(5, 0), 3.0);
}

TEST(Jds, PermutationSortsRowsByLength) {
  Jds a = Jds::from_coo(figure1_matrix());
  // Rows 0,2,4 have 2 entries; rows 1,3,5 have 1.
  auto perm = a.perm();
  EXPECT_EQ(perm[0], 0);
  EXPECT_EQ(perm[1], 2);
  EXPECT_EQ(perm[2], 4);
  EXPECT_EQ(a.num_jdiags(), 2);
  // First jagged diagonal covers all 6 rows, second only the 3 long rows.
  EXPECT_EQ(a.jdptr()[1] - a.jdptr()[0], 6);
  EXPECT_EQ(a.jdptr()[2] - a.jdptr()[1], 3);
  EXPECT_DOUBLE_EQ(a.at(4, 5), 9.0);
}

TEST(Dense, FromToCoo) {
  Coo a = figure1_matrix();
  Dense d = Dense::from_coo(a);
  EXPECT_DOUBLE_EQ(d.at(2, 5), 8.0);
  EXPECT_EQ(d.to_coo(), a);
}

// ---------------------------------------------------------------------------
// Parameterized property sweeps across all formats.

struct SweepCase {
  Kind kind;
  index_t rows;
  index_t cols;
  index_t nnz;
  std::uint64_t seed;
};

std::ostream& operator<<(std::ostream& os, const SweepCase& c) {
  return os << kind_name(c.kind) << "_" << c.rows << "x" << c.cols << "_nnz"
            << c.nnz << "_s" << c.seed;
}

class FormatSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(FormatSweep, RoundTripsThroughCoo) {
  const auto& p = GetParam();
  Coo a = random_matrix(p.rows, p.cols, p.nnz, p.seed);
  AnyFormat f(p.kind, a);
  EXPECT_EQ(f.to_coo(), a);
}

TEST_P(FormatSweep, LookupMatchesDense) {
  const auto& p = GetParam();
  Coo a = random_matrix(p.rows, p.cols, p.nnz, p.seed);
  AnyFormat f(p.kind, a);
  Dense d = Dense::from_coo(a);
  for (index_t i = 0; i < p.rows; ++i)
    for (index_t j = 0; j < p.cols; ++j)
      ASSERT_DOUBLE_EQ(f.at(i, j), d.at(i, j)) << "(" << i << "," << j << ")";
}

TEST_P(FormatSweep, SpmvMatchesDenseReference) {
  const auto& p = GetParam();
  Coo a = random_matrix(p.rows, p.cols, p.nnz, p.seed);
  AnyFormat f(p.kind, a);
  Dense d = Dense::from_coo(a);

  SplitMix64 rng(p.seed ^ 0xabcdef);
  Vector x(static_cast<std::size_t>(p.cols));
  for (auto& v : x) v = rng.next_double(-1.0, 1.0);

  Vector y_ref(static_cast<std::size_t>(p.rows)), y(y_ref.size());
  spmv(d, x, y_ref);
  f.spmv(x, y);
  for (std::size_t i = 0; i < y.size(); ++i)
    ASSERT_NEAR(y[i], y_ref[i], 1e-12) << "row " << i;
}

TEST_P(FormatSweep, SpmvAddAccumulates) {
  const auto& p = GetParam();
  Coo a = random_matrix(p.rows, p.cols, p.nnz, p.seed);
  AnyFormat f(p.kind, a);

  Vector x(static_cast<std::size_t>(p.cols), 1.0);
  Vector y0(static_cast<std::size_t>(p.rows), 0.5);
  Vector y1 = y0;
  Vector ax(static_cast<std::size_t>(p.rows));
  f.spmv(x, ax);
  f.spmv_add(x, y1);
  for (std::size_t i = 0; i < y1.size(); ++i)
    ASSERT_NEAR(y1[i], y0[i] + ax[i], 1e-12);
}

std::vector<SweepCase> make_sweep() {
  std::vector<SweepCase> cases;
  std::uint64_t seed = 100;
  for (Kind k : sparse_kinds()) {
    cases.push_back({k, 1, 1, 1, seed++});       // degenerate 1x1
    cases.push_back({k, 8, 8, 8, seed++});       // tiny
    cases.push_back({k, 25, 40, 130, seed++});   // rectangular wide
    cases.push_back({k, 40, 25, 130, seed++});   // rectangular tall
    cases.push_back({k, 64, 64, 500, seed++});   // moderate density
    cases.push_back({k, 100, 100, 40, seed++});  // very sparse (empty rows)
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllFormats, FormatSweep,
                         ::testing::ValuesIn(make_sweep()),
                         [](const ::testing::TestParamInfo<SweepCase>& info) {
                           std::ostringstream os;
                           os << info.param;
                           // gtest parameterized names must be [A-Za-z0-9_]
                           // ("SELL-C-s" has dashes).
                           std::string s = os.str();
                           for (char& ch : s)
                             if (!std::isalnum(static_cast<unsigned char>(ch)))
                               ch = '_';
                           return s;
                         });

TEST(AnyFormat, StorageBytesOrdering) {
  // ITPACK on a matrix with one long row pays padding; CRS does not.
  TripletBuilder b(50, 50);
  for (index_t j = 0; j < 50; ++j) b.add(0, j, 1.0);
  for (index_t i = 1; i < 50; ++i) b.add(i, i, 1.0);
  Coo a = std::move(b).build();
  AnyFormat ell(Kind::kEll, a), csr(Kind::kCsr, a);
  EXPECT_GT(ell.storage_bytes(), csr.storage_bytes());
}

TEST(AnyFormat, EmptyMatrixAllKinds) {
  Coo a(4, 4, {});
  for (Kind k : sparse_kinds()) {
    AnyFormat f(k, a);
    Vector x(4, 1.0), y(4, -1.0);
    f.spmv(x, y);
    for (double v : y) EXPECT_DOUBLE_EQ(v, 0.0);
    EXPECT_EQ(f.to_coo().nnz(), 0);
  }
}

}  // namespace
}  // namespace bernoulli::formats
