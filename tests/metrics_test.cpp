// Unit tests for the serving-era metrics registry: bucket math, exact
// percentile semantics, the shard-and-merge determinism contract (N
// threads recording a known multiset must snapshot bitwise-identical to
// the serial merge), and the JSON / Prometheus export formats.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <thread>
#include <vector>

#include "support/metrics.hpp"

namespace bernoulli::support {
namespace {

TEST(LatencyBuckets, LinearRangeIsExact) {
  for (long long v = 0; v < LatencyHistogram::kLinearBuckets; ++v) {
    EXPECT_EQ(LatencyHistogram::bucket_of(v), v);
    EXPECT_EQ(LatencyHistogram::bucket_lower(static_cast<int>(v)), v);
    EXPECT_EQ(LatencyHistogram::bucket_upper(static_cast<int>(v)), v);
  }
}

TEST(LatencyBuckets, BoundsContainValueAndAreContiguous) {
  // Sweep powers of two, their neighbours, and a pseudo-random sample.
  std::vector<long long> probe = {0, 1, 15, 16, 17, 31, 32, 63, 64, 100, 1000};
  for (int k = 4; k < 45; ++k) {
    probe.push_back((1LL << k) - 1);
    probe.push_back(1LL << k);
    probe.push_back((1LL << k) + (1LL << (k - 2)));
  }
  std::mt19937_64 rng(7);
  for (int i = 0; i < 1000; ++i)
    probe.push_back(static_cast<long long>(rng() >> 22));
  for (long long v : probe) {
    const int b = LatencyHistogram::bucket_of(v);
    ASSERT_GE(b, 0);
    ASSERT_LT(b, LatencyHistogram::kBuckets);
    EXPECT_LE(LatencyHistogram::bucket_lower(b), v) << v;
    EXPECT_GE(LatencyHistogram::bucket_upper(b), v) << v;
  }
  // Buckets tile the axis: each upper is the next lower minus one.
  for (int b = 0; b + 1 < LatencyHistogram::kBuckets; ++b) {
    EXPECT_EQ(LatencyHistogram::bucket_upper(b) + 1,
              LatencyHistogram::bucket_lower(b + 1));
    EXPECT_EQ(LatencyHistogram::bucket_of(LatencyHistogram::bucket_lower(b)),
              b);
    EXPECT_EQ(LatencyHistogram::bucket_of(LatencyHistogram::bucket_upper(b)),
              b);
  }
}

TEST(LatencyHistogramTest, SingleValueHasExactPercentiles) {
  LatencyHistogram h;
  h.record_ns(12345);
  LatencySnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 1);
  EXPECT_EQ(s.sum_ns, 12345);
  EXPECT_EQ(s.min_ns, 12345);
  EXPECT_EQ(s.max_ns, 12345);
  // Percentiles clamp to the exact observed range.
  EXPECT_EQ(s.p50_ns(), 12345);
  EXPECT_EQ(s.p99_ns(), 12345);
  EXPECT_EQ(s.quantile_ns(0.0), 12345);
}

TEST(LatencyHistogramTest, SmallValuesGiveExactQuantiles) {
  LatencyHistogram h;
  for (long long v = 1; v <= 10; ++v) h.record_ns(v);  // 1..10, exact buckets
  LatencySnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 10);
  EXPECT_EQ(s.sum_ns, 55);
  EXPECT_EQ(s.p50_ns(), 5);   // ceil(0.5*10) = 5th value
  EXPECT_EQ(s.p95_ns(), 10);  // ceil(0.95*10) = 10th value
  EXPECT_EQ(s.p99_ns(), 10);
  EXPECT_EQ(s.quantile_ns(0.1), 1);
  EXPECT_EQ(s.min_ns, 1);
  EXPECT_EQ(s.max_ns, 10);
}

TEST(LatencyHistogramTest, QuantileErrorBoundedBySubBucket) {
  LatencyHistogram h;
  std::mt19937_64 rng(11);
  std::vector<long long> vals;
  for (int i = 0; i < 5000; ++i) {
    long long v = static_cast<long long>(rng() % 2000000) + 16;
    vals.push_back(v);
    h.record_ns(v);
  }
  std::sort(vals.begin(), vals.end());
  LatencySnapshot s = h.snapshot();
  for (double q : {0.5, 0.95, 0.99}) {
    const std::size_t rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(vals.size())));
    const long long exact = vals[rank - 1];
    const long long approx = s.quantile_ns(q);
    // The reported value is the bucket upper bound: never below the exact
    // order statistic, and within one sub-bucket width (< 25%) above it.
    EXPECT_GE(approx, exact);
    EXPECT_LE(static_cast<double>(approx), 1.25 * static_cast<double>(exact));
  }
}

// The tentpole determinism contract (satellite: concurrency test): N
// threads record disjoint slices of a known multiset; the merged snapshot
// must equal the serial single-thread merge EXACTLY — count, sum, min,
// max, every bucket, and therefore every percentile.
TEST(LatencyHistogramTest, ThreadedMergeEqualsSerialMergeBitwise) {
  std::mt19937_64 rng(23);
  std::vector<long long> values;
  for (int i = 0; i < 40000; ++i)
    values.push_back(static_cast<long long>(rng() % 5000000));

  LatencyHistogram serial;
  for (long long v : values) serial.record_ns(v);
  LatencySnapshot want = serial.snapshot();

  for (int threads : {2, 5, 16, 33}) {
    LatencyHistogram sharded;
    std::vector<std::thread> pool;
    const std::size_t chunk = (values.size() + threads - 1) / threads;
    for (int t = 0; t < threads; ++t) {
      pool.emplace_back([&, t] {
        const std::size_t lo = static_cast<std::size_t>(t) * chunk;
        const std::size_t hi = std::min(values.size(), lo + chunk);
        for (std::size_t i = lo; i < hi; ++i) sharded.record_ns(values[i]);
      });
    }
    for (auto& th : pool) th.join();
    LatencySnapshot got = sharded.snapshot();
    EXPECT_EQ(got.count, want.count) << threads;
    EXPECT_EQ(got.sum_ns, want.sum_ns) << threads;
    EXPECT_EQ(got.min_ns, want.min_ns) << threads;
    EXPECT_EQ(got.max_ns, want.max_ns) << threads;
    ASSERT_EQ(got.buckets.size(), want.buckets.size());
    for (std::size_t b = 0; b < want.buckets.size(); ++b)
      EXPECT_EQ(got.buckets[b], want.buckets[b]) << "bucket " << b;
    EXPECT_EQ(got.p50_ns(), want.p50_ns()) << threads;
    EXPECT_EQ(got.p95_ns(), want.p95_ns()) << threads;
    EXPECT_EQ(got.p99_ns(), want.p99_ns()) << threads;
  }
}

TEST(MetricRateTest, ThreadedAddsMergeExactly) {
  MetricRate r;
  std::vector<std::thread> pool;
  for (int t = 0; t < 8; ++t)
    pool.emplace_back([&r] {
      for (int i = 0; i < 10000; ++i) r.add(3);
    });
  for (auto& th : pool) th.join();
  EXPECT_EQ(r.value(), 8LL * 10000 * 3);
  r.reset();
  EXPECT_EQ(r.value(), 0);
}

TEST(MetricsRegistry, IdentityAndSnapshotAndReset) {
  metrics_reset();
  MetricRate& a = metric_rate("test.metrics.rate");
  EXPECT_EQ(&a, &metric_rate("test.metrics.rate"));
  a.add(7);
  metric_gauge("test.metrics.gauge").set(2.5);
  metric_latency("test.metrics.lat").record_ns(100);

  MetricsSnapshot snap = metrics_snapshot();
  EXPECT_EQ(snap.rates.at("test.metrics.rate"), 7);
  EXPECT_EQ(snap.gauges.at("test.metrics.gauge"), 2.5);
  EXPECT_EQ(snap.latencies.at("test.metrics.lat").count, 1);
  EXPECT_EQ(snap.latencies.at("test.metrics.lat").sum_ns, 100);

  metrics_reset();
  snap = metrics_snapshot();
  EXPECT_EQ(snap.rates.at("test.metrics.rate"), 0);
  EXPECT_EQ(snap.gauges.at("test.metrics.gauge"), 0.0);
  EXPECT_EQ(snap.latencies.at("test.metrics.lat").count, 0);
}

TEST(MetricsExport, JsonCarriesSchemaAndHistogram) {
  metrics_reset();
  metric_rate("test.export.rate").add(5);
  metric_latency("test.export.lat").record_ns(42);
  const std::string doc = metrics_json();
  EXPECT_NE(doc.find("\"schema\":\"bernoulli.metrics.v1\""), std::string::npos);
  EXPECT_NE(doc.find("\"test.export.rate\":5"), std::string::npos);
  EXPECT_NE(doc.find("\"test.export.lat\""), std::string::npos);
  // Value 42 lands in its own bucket pair [40, 1].
  EXPECT_NE(doc.find("[40,1]"), std::string::npos);
  EXPECT_NE(doc.find("\"sum_ns\":42"), std::string::npos);
}

TEST(MetricsExport, PrometheusTextShape) {
  metrics_reset();
  metric_rate("test.prom.rate").add(5);
  metric_gauge("test.prom.gauge").set(1.5);
  metric_latency("test.prom.lat").record_ns(1000);
  const std::string text = metrics_prometheus_text();
  EXPECT_NE(text.find("# TYPE bernoulli_test_prom_rate_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("bernoulli_test_prom_rate_total 5"), std::string::npos);
  EXPECT_NE(text.find("# TYPE bernoulli_test_prom_gauge gauge"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE bernoulli_test_prom_lat_seconds histogram"),
            std::string::npos);
  EXPECT_NE(text.find("bernoulli_test_prom_lat_seconds_count 1"),
            std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\"} 1"), std::string::npos);
}

}  // namespace
}  // namespace bernoulli::support
