// End-to-end distributed compilation: dense program + distributions ->
// generated inspector/executor, checked against the sequential product.
#include <gtest/gtest.h>

#include "distrib/distribution.hpp"
#include "solvers/dist_cg.hpp"
#include "spmd/dist_compile.hpp"
#include "support/rng.hpp"
#include "workloads/grid.hpp"

namespace bernoulli::spmd {
namespace {

using distrib::BlockDist;
using distrib::CyclicDist;
using formats::Csr;

TEST(DistCompile, MatvecMatchesSequential) {
  auto g = workloads::grid3d_7pt(4, 4, 3, 2, 81);
  Csr a = Csr::from_coo(g.matrix);
  const index_t n = a.rows();
  const int P = 4;
  BlockDist rows(n, P);

  SplitMix64 rng(1);
  Vector x(static_cast<std::size_t>(n));
  for (auto& v : x) v = rng.next_double(-1, 1);
  Vector y_ref(static_cast<std::size_t>(n));
  formats::spmv(a, x, y_ref);

  Vector y(static_cast<std::size_t>(n), 0.0);
  std::mutex mu;
  runtime::Machine machine(P);
  machine.run([&](runtime::Process& p) {
    DistKernel k = compile_dist_matvec(p, a, rows);
    auto mine = rows.owned_indices(p.rank());
    auto xo = k.x_owned();
    for (std::size_t i = 0; i < mine.size(); ++i)
      xo[i] = x[static_cast<std::size_t>(mine[i])];
    k.run(p, /*tag=*/2);
    auto yl = k.y_local();
    std::lock_guard<std::mutex> lk(mu);
    for (std::size_t i = 0; i < mine.size(); ++i)
      y[static_cast<std::size_t>(mine[i])] = yl[i];
  });
  for (std::size_t i = 0; i < y.size(); ++i)
    ASSERT_NEAR(y[i], y_ref[i], 1e-11) << i;
}

TEST(DistCompile, RepeatedRunsRefreshGhosts) {
  // Change x between runs: ghosts must follow (the executor is reusable,
  // the inspector amortized — the paper's whole performance story).
  auto g = workloads::grid2d_5pt(10, 4, 1, 82);
  Csr a = Csr::from_coo(g.matrix);
  const index_t n = a.rows();
  const int P = 2;
  CyclicDist rows(n, P);  // cyclic: nearly everything is a ghost

  Vector got_first(static_cast<std::size_t>(n), 0.0);
  Vector got_second(static_cast<std::size_t>(n), 0.0);
  std::mutex mu;
  runtime::Machine machine(P);
  machine.run([&](runtime::Process& p) {
    DistKernel k = compile_dist_matvec(p, a, rows);
    auto mine = rows.owned_indices(p.rank());
    for (int round = 0; round < 2; ++round) {
      auto xo = k.x_owned();
      for (std::size_t i = 0; i < mine.size(); ++i)
        xo[i] = round == 0 ? 1.0 : static_cast<value_t>(mine[i]);
      k.run(p, 3);
      auto yl = k.y_local();
      std::lock_guard<std::mutex> lk(mu);
      for (std::size_t i = 0; i < mine.size(); ++i)
        (round == 0 ? got_first : got_second)[static_cast<std::size_t>(
            mine[i])] = yl[i];
    }
  });

  Vector ones(static_cast<std::size_t>(n), 1.0), ramp(static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < ramp.size(); ++i) ramp[i] = static_cast<value_t>(i);
  Vector ref1(ones.size()), ref2(ones.size());
  formats::spmv(a, ones, ref1);
  formats::spmv(a, ramp, ref2);
  for (std::size_t i = 0; i < ones.size(); ++i) {
    ASSERT_NEAR(got_first[i], ref1[i], 1e-11);
    ASSERT_NEAR(got_second[i], ref2[i], 1e-11);
  }
}

TEST(DistCompile, CompiledCgMatchesHandWritten) {
  // dist_cg_compiled runs the same PCG recurrence with the compiled
  // kernel's SpMV (plan linked once, re-run per iteration) in place of the
  // hand-written DistSpmv — it must track the hand-written solve
  // iterate-for-iterate on the same operator.
  auto g = workloads::grid3d_7pt(4, 4, 3, 2, 85);
  Csr a = Csr::from_coo(g.matrix);
  const index_t n = a.rows();
  const int P = 2;
  BlockDist rows(n, P);
  Vector diag = solvers::extract_diagonal(a);
  Vector b(static_cast<std::size_t>(n), 1.0);

  solvers::CgOptions opts;
  opts.max_iterations = 40;
  opts.tolerance = 1e-10;

  Vector x_hand(static_cast<std::size_t>(n), 0.0);
  Vector x_comp(static_cast<std::size_t>(n), 0.0);
  solvers::DistCgResult res_hand, res_comp;
  std::mutex mu;
  runtime::Machine machine(P);
  machine.run([&](runtime::Process& p) {
    auto mine = rows.owned_indices(p.rank());
    Vector bl(mine.size()), dl(mine.size());
    for (std::size_t i = 0; i < mine.size(); ++i) {
      bl[i] = b[static_cast<std::size_t>(mine[i])];
      dl[i] = diag[static_cast<std::size_t>(mine[i])];
    }

    DistSpmv dist = build_dist_spmv(p, a, rows, Variant::kBlockSolve);
    Vector xl(mine.size(), 0.0);
    auto r1 = solvers::dist_cg(p, dist, dl, bl, xl, opts);

    DistKernel k = compile_dist_matvec(p, a, rows);
    Vector xc(mine.size(), 0.0);
    auto r2 = solvers::dist_cg_compiled(p, k, dl, bl, xc, opts);

    std::lock_guard<std::mutex> lk(mu);
    res_hand = r1;
    res_comp = r2;
    for (std::size_t i = 0; i < mine.size(); ++i) {
      x_hand[static_cast<std::size_t>(mine[i])] = xl[i];
      x_comp[static_cast<std::size_t>(mine[i])] = xc[i];
    }
  });

  EXPECT_TRUE(res_hand.converged);
  EXPECT_TRUE(res_comp.converged);
  EXPECT_EQ(res_hand.iterations, res_comp.iterations);
  EXPECT_NEAR(res_hand.residual_norm, res_comp.residual_norm, 1e-9);
  for (std::size_t i = 0; i < x_hand.size(); ++i)
    ASSERT_NEAR(x_hand[i], x_comp[i], 1e-8) << i;
}

TEST(DistCompile, EmitsLocalProgram) {
  auto g = workloads::grid2d_5pt(6, 6, 1, 83);
  Csr a = Csr::from_coo(g.matrix);
  BlockDist rows(a.rows(), 2);
  std::vector<std::string> codes(2);
  runtime::Machine machine(2);
  machine.run([&](runtime::Process& p) {
    DistKernel k = compile_dist_matvec(p, a, rows);
    codes[static_cast<std::size_t>(p.rank())] = k.emit("node_spmv");
    EXPECT_NE(k.describe_plan().find("enumerate A"), std::string::npos);
  });
  for (const auto& code : codes) {
    EXPECT_NE(code.find("void node_spmv(void)"), std::string::npos);
    EXPECT_NE(code.find("A_ROWPTR"), std::string::npos);
  }
}

TEST(DistCompile, KernelSurvivesMove) {
  // The kernel owns heap-anchored storage; views must stay valid after
  // moving the kernel object around.
  auto g = workloads::grid2d_5pt(5, 5, 1, 84);
  Csr a = Csr::from_coo(g.matrix);
  BlockDist rows(a.rows(), 1);
  runtime::Machine machine(1);
  machine.run([&](runtime::Process& p) {
    auto holder = std::make_unique<DistKernel>(compile_dist_matvec(p, a, rows));
    DistKernel moved = std::move(*holder);
    holder.reset();
    auto xo = moved.x_owned();
    std::fill(xo.begin(), xo.end(), 1.0);
    moved.run(p, 4);
    Vector ones(static_cast<std::size_t>(a.rows()), 1.0), ref(ones.size());
    formats::spmv(a, ones, ref);
    auto yl = moved.y_local();
    for (std::size_t i = 0; i < ref.size(); ++i)
      ASSERT_NEAR(yl[i], ref[i], 1e-12);
  });
}

}  // namespace
}  // namespace bernoulli::spmd
