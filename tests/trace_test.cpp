// Tests for the span tracer (support/trace.hpp): Chrome trace-event JSON
// validity (round-tripped through the strict parser), send->recv flow
// pairing on a 4-rank distributed SpMV, and the reconciliation invariant —
// comm-matrix totals, send-span byte args, comm.<phase>.bytes counters and
// runtime::CommStats must all agree exactly, because they are all fed from
// the single booking site in runtime::Process::send_bytes.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "distrib/distribution.hpp"
#include "formats/csr.hpp"
#include "runtime/machine.hpp"
#include "spmd/matvec.hpp"
#include "support/counters.hpp"
#include "support/histogram.hpp"
#include "support/json_reader.hpp"
#include "support/trace.hpp"
#include "support/trace_cli.hpp"
#include "workloads/grid.hpp"

namespace bernoulli::support {
namespace {

const JsonValue& events_of(const JsonValue& doc) {
  const JsonValue* evs = doc.find("traceEvents");
  EXPECT_NE(evs, nullptr);
  EXPECT_TRUE(evs->is_array());
  return *evs;
}

TEST(Trace, JsonValidityRoundTrip) {
  trace_start();
  {
    TraceSpan outer("outer \"span\"\nwith\x01control", "test");
    outer.arg("text", std::string_view("a\tb\x02"))
        .arg("n", 42LL)
        .arg("x", 2.5);
    TraceSpan inner("inner", "test");
    trace_instant("tick", "test");
    trace_counter("gauge", 7.0);
  }
  trace_stop();

  // The exported document must survive the strict RFC 8259 parser even
  // with control characters and quotes in names and args.
  JsonValue doc = json_parse(trace_json());
  const JsonValue& evs = events_of(doc);
  ASSERT_GE(evs.items.size(), 4u);

  std::map<std::string, int> by_ph;
  bool found_outer = false;
  for (const JsonValue& ev : evs.items) {
    ++by_ph[ev.find("ph")->as_string()];
    ASSERT_NE(ev.find("ts"), nullptr);
    ASSERT_NE(ev.find("pid"), nullptr);
    ASSERT_NE(ev.find("tid"), nullptr);
    if (ev.find("name")->as_string() ==
        std::string("outer \"span\"\nwith\x01control")) {
      found_outer = true;
      const JsonValue* args = ev.find("args");
      ASSERT_NE(args, nullptr);
      EXPECT_EQ(args->find("text")->as_string(), std::string("a\tb\x02"));
      EXPECT_EQ(args->find("n")->as_number(), 42);
      EXPECT_EQ(args->find("x")->as_number(), 2.5);
    }
  }
  EXPECT_TRUE(found_outer);
  EXPECT_EQ(by_ph["X"], 2);
  EXPECT_EQ(by_ph["i"], 1);
  EXPECT_EQ(by_ph["C"], 1);

  // Pretty-printed output parses to the same event count.
  EXPECT_EQ(events_of(json_parse(trace_json(2))).items.size(),
            evs.items.size());

  EXPECT_EQ(doc.find("bernoulli")->find("schema")->as_string(),
            "bernoulli.trace.v1");
}

TEST(Trace, DisabledRecordsNothing) {
  trace_start();
  trace_stop();
  { TraceSpan span("after stop", "test"); }
  trace_instant("after stop", "test");
  EXPECT_EQ(events_of(json_parse(trace_json())).items.size(), 0u);
}

TEST(Trace, FourRankMatvecFlowsAndReconciliation) {
  auto g = workloads::grid3d_7pt(4, 4, 3, 2, 21);
  formats::Csr a = formats::Csr::from_coo(g.matrix);
  const int P = 4;
  distrib::BlockDist rows(a.rows(), P);

  counters_reset();
  histograms_reset();
  trace_start();
  runtime::Machine machine(P);
  auto reports = machine.run([&](runtime::Process& p) {
    spmd::DistSpmv dist = spmd::build_dist_spmv(p, a, rows, //
                                                spmd::Variant::kBernoulliMixed);
    Vector x_full(static_cast<std::size_t>(dist.sched.full_size()), 1.0);
    Vector y(static_cast<std::size_t>(dist.sched.owned), 0.0);
    dist.apply(p, x_full, y, /*tag=*/7);
  });
  trace_stop();

  JsonValue doc = json_parse(trace_json());
  const JsonValue& evs = events_of(doc);

  // --- one track per rank, on a machine pid, named "rank <r>" ----------
  std::set<int> machine_pids;
  std::map<int, std::set<int>> rank_tids;  // pid -> tids with comm spans
  std::map<long long, int> flow_starts, flow_ends;
  long long span_send_bytes = 0, span_send_count = 0;
  for (const JsonValue& ev : evs.items) {
    const std::string& ph = ev.find("ph")->as_string();
    const std::string& name = ev.find("name")->as_string();
    int pid = static_cast<int>(ev.find("pid")->as_number());
    if (ph == "M" && name == "process_name") machine_pids.insert(pid);
    if (ph == "X" && name == "send") {
      rank_tids[pid].insert(static_cast<int>(ev.find("tid")->as_number()));
      span_send_bytes +=
          static_cast<long long>(ev.find("args")->find("bytes")->as_number());
      ++span_send_count;
    }
    if (ph == "s") ++flow_starts[static_cast<long long>(
        ev.find("id")->as_number())];
    if (ph == "f") {
      ++flow_ends[static_cast<long long>(ev.find("id")->as_number())];
      // Flow ends must bind to the enclosing slice.
      EXPECT_EQ(ev.find("bp")->as_string(), "e");
    }
  }
  ASSERT_EQ(machine_pids.size(), 1u);
  const int pid = *machine_pids.begin();
  EXPECT_GE(pid, 100);  // machine pids start at 100; host is pid 1
  EXPECT_EQ(rank_tids[pid], (std::set<int>{0, 1, 2, 3}));

  // --- flow pairing: every send arrow lands exactly once ---------------
  ASSERT_FALSE(flow_starts.empty());
  EXPECT_EQ(flow_starts.size(), flow_ends.size());
  for (const auto& [id, n] : flow_starts) {
    EXPECT_EQ(n, 1) << "flow " << id;
    EXPECT_EQ(flow_ends[id], 1) << "flow " << id;
  }
  EXPECT_EQ(static_cast<long long>(flow_starts.size()), span_send_count);

  // --- reconciliation: four independent byte totals, one booking site --
  long long stats_bytes = 0, stats_messages = 0;
  for (const auto& r : reports) {
    stats_bytes += r.stats.bytes;
    stats_messages += r.stats.messages;
  }
  ASSERT_GT(stats_bytes, 0);

  CommMatrixSnapshot mat = comm_matrix_snapshot();
  EXPECT_EQ(mat.nprocs, P);
  EXPECT_EQ(mat.total_bytes, stats_bytes);
  EXPECT_EQ(mat.total_messages, stats_messages);
  for (int r = 0; r < P; ++r)  // no self-messages in the matrix
    EXPECT_EQ(mat.messages_at(r, r), 0);

  EXPECT_EQ(span_send_bytes, stats_bytes);
  EXPECT_EQ(span_send_count, stats_messages);

  long long counter_bytes = 0, counter_messages = 0;
  auto snap = counters_snapshot();
  for (const auto& [name, v] : snap.counts) {
    if (name.rfind("comm.", 0) != 0) continue;
    if (name.size() >= 6 && name.compare(name.size() - 6, 6, ".bytes") == 0)
      counter_bytes += v;
    if (name.size() >= 9 &&
        name.compare(name.size() - 9, 9, ".messages") == 0)
      counter_messages += v;
  }
  EXPECT_EQ(counter_bytes, stats_bytes);
  EXPECT_EQ(counter_messages, stats_messages);

  // The embedded comm_matrix report carries the same totals.
  const JsonValue* embedded = doc.find("bernoulli")->find("comm_matrix");
  ASSERT_NE(embedded, nullptr);
  EXPECT_EQ(embedded->find("total_bytes")->as_number(),
            static_cast<double>(stats_bytes));

  // The message-size histogram saw every message exactly once.
  auto hists = histograms_snapshot();
  long long hist_total = 0;
  for (long long c : hists.at("comm.message_bytes")) hist_total += c;
  EXPECT_EQ(hist_total, stats_messages);

  std::string text = comm_matrix_text();
  EXPECT_NE(text.find("total: " + std::to_string(stats_messages) +
                      " messages, " + std::to_string(stats_bytes) + " bytes"),
            std::string::npos);
}

TEST(Trace, CommMatrixWithoutTracing) {
  // --comm-matrix without --trace: recording works with tracing off.
  trace_stop();
  comm_record_start();
  EXPECT_FALSE(trace_enabled());
  EXPECT_TRUE(comm_record_enabled());
  comm_matrix_record(0, 1, 100);
  comm_matrix_record(1, 0, 50);
  comm_matrix_record(0, 1, 100);
  comm_record_stop();
  CommMatrixSnapshot snap = comm_matrix_snapshot();
  EXPECT_EQ(snap.messages_at(0, 1), 2);
  EXPECT_EQ(snap.bytes_at(0, 1), 200);
  EXPECT_EQ(snap.bytes_at(1, 0), 50);
}

// A run that records no spans and sends no messages must still export a
// bernoulli.trace.v1 document that round-trips, and the strict obs_end
// reconciliation epilogue must accept the all-zeros totals instead of
// aborting on an empty comm matrix / empty histogram set.
TEST(Trace, ZeroSpanZeroMessageRunExportsAndReconciles) {
  histograms_reset();
  const std::string path =
      ::testing::TempDir() + "/zero_span_trace_test.json";
  ObsOptions o;
  o.trace_path = path;
  obs_begin(o);
  runtime::Machine m(1);
  m.run([](runtime::Process&) {});
  EXPECT_NO_THROW(obs_end(o, /*commstats_messages=*/0,
                          /*commstats_bytes=*/0));

  std::ifstream f(path);
  ASSERT_TRUE(f.good()) << path;
  std::stringstream ss;
  ss << f.rdbuf();
  JsonValue doc = json_parse(ss.str());
  const JsonValue* meta = doc.find("bernoulli");
  ASSERT_NE(meta, nullptr);
  EXPECT_EQ(meta->find("schema")->as_string(), "bernoulli.trace.v1");
  const JsonValue* mat = meta->find("comm_matrix");
  ASSERT_NE(mat, nullptr);
  EXPECT_EQ(mat->find("nprocs")->as_number(), 0);
  EXPECT_EQ(mat->find("total_bytes")->as_number(), 0);
  const JsonValue* hist = meta->find("histograms");
  ASSERT_NE(hist, nullptr);
  EXPECT_TRUE(hist->members.empty());
  const JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  // Only metadata events (process/thread names), no "X" spans.
  for (const JsonValue& ev : events->items)
    EXPECT_NE(ev.find("ph")->as_string(), "X");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace bernoulli::support
