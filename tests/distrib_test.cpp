// Distribution relations: bijection invariants for every replicated
// format, the BlockSolve run construction, and the Chaos distributed
// translation table (build + query against the replicated reference).
#include <gtest/gtest.h>

#include <numeric>

#include "distrib/chaos.hpp"
#include "distrib/distribution.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace bernoulli::distrib {
namespace {

TEST(BlockDist, BasicLayout) {
  BlockDist d(10, 3);  // B = 4: [0,4) [4,8) [8,10)
  EXPECT_EQ(d.local_size(0), 4);
  EXPECT_EQ(d.local_size(1), 4);
  EXPECT_EQ(d.local_size(2), 2);
  EXPECT_EQ(d.owner_local(5), (OwnerLocal{1, 1}));
  EXPECT_EQ(d.to_global(2, 1), 9);
  check_distribution(d);
}

TEST(CyclicDist, BasicLayout) {
  CyclicDist d(10, 3);
  EXPECT_EQ(d.owner_local(0), (OwnerLocal{0, 0}));
  EXPECT_EQ(d.owner_local(4), (OwnerLocal{1, 1}));
  EXPECT_EQ(d.local_size(0), 4);  // 0,3,6,9
  EXPECT_EQ(d.local_size(2), 3);  // 2,5,8
  check_distribution(d);
}

TEST(BlockCyclicDist, DealsBlocksRoundRobin) {
  distrib::BlockCyclicDist d(14, 3, 2);  // blocks: p0:{0,1},{6,7},{12,13} ...
  EXPECT_EQ(d.owner_local(0), (OwnerLocal{0, 0}));
  EXPECT_EQ(d.owner_local(1), (OwnerLocal{0, 1}));
  EXPECT_EQ(d.owner_local(2), (OwnerLocal{1, 0}));
  EXPECT_EQ(d.owner_local(6), (OwnerLocal{0, 2}));
  EXPECT_EQ(d.owner_local(13), (OwnerLocal{0, 5}));
  EXPECT_EQ(d.local_size(0), 6);
  EXPECT_EQ(d.local_size(1), 4);
  EXPECT_EQ(d.local_size(2), 4);
  check_distribution(d);
}

TEST(BlockCyclicDist, DegeneratesToBlockAndCyclic) {
  const index_t n = 20;
  const int P = 4;
  distrib::BlockCyclicDist as_cyclic(n, P, 1);
  CyclicDist cyclic(n, P);
  distrib::BlockCyclicDist as_block(n, P, (n + P - 1) / P);
  BlockDist block(n, P);
  for (index_t i = 0; i < n; ++i) {
    EXPECT_EQ(as_cyclic.owner_local(i), cyclic.owner_local(i));
    EXPECT_EQ(as_block.owner_local(i), block.owner_local(i));
  }
  check_distribution(as_cyclic);
  check_distribution(as_block);
}

TEST(GeneralizedBlockDist, UnevenBlocks) {
  GeneralizedBlockDist d(10, {1, 6, 0, 3});
  EXPECT_EQ(d.owner_local(0).owner, 0);
  EXPECT_EQ(d.owner_local(1).owner, 1);
  EXPECT_EQ(d.owner_local(6).owner, 1);
  EXPECT_EQ(d.owner_local(7), (OwnerLocal{3, 0}));
  check_distribution(d);
  EXPECT_THROW(GeneralizedBlockDist(10, {5, 4}), Error);  // sums to 9
}

TEST(IndirectDist, ArbitraryMap) {
  std::vector<int> map{2, 0, 0, 1, 2, 2, 1, 0};
  IndirectDist d(map, 3);
  EXPECT_EQ(d.local_size(0), 3);
  EXPECT_EQ(d.local_size(1), 2);
  EXPECT_EQ(d.local_size(2), 3);
  EXPECT_EQ(d.owner_local(3), (OwnerLocal{1, 0}));
  EXPECT_EQ(d.owner_local(6), (OwnerLocal{1, 1}));
  check_distribution(d);
  EXPECT_THROW(IndirectDist({0, 5}, 3), Error);
}

TEST(RowRunsDist, SeveralRunsPerProc) {
  // Two colors, two procs: p0 gets [0,3) and [6,8); p1 gets [3,6) and [8,10).
  RowRunsDist d(10, 2,
                {{0, 3, 0}, {3, 3, 1}, {6, 2, 0}, {8, 2, 1}});
  EXPECT_EQ(d.local_size(0), 5);
  EXPECT_EQ(d.local_size(1), 5);
  EXPECT_EQ(d.owner_local(7), (OwnerLocal{0, 4}));
  EXPECT_EQ(d.owner_local(9), (OwnerLocal{1, 4}));
  EXPECT_EQ(d.to_global(0, 3), 6);
  check_distribution(d);
  auto runs0 = d.local_runs(0);
  ASSERT_EQ(runs0.size(), 2u);
  EXPECT_EQ(runs0[1].local_start, 3);
  EXPECT_THROW(RowRunsDist(10, 2, {{0, 5, 0}}), Error);  // does not tile
}

TEST(RowRunsDist, FromColorPtr) {
  // Colors covering [0,12): sizes 7 and 5, on 3 procs.
  std::vector<index_t> color_ptr{0, 7, 12};
  RowRunsDist d = rowruns_from_color_ptr(color_ptr, 12, 3);
  check_distribution(d);
  // Every proc owns at most one run per color.
  for (int p = 0; p < 3; ++p) EXPECT_LE(d.local_runs(p).size(), 2u);
  // Work is balanced within a factor of the chunk rounding.
  for (int p = 0; p < 3; ++p) EXPECT_LE(d.local_size(p), 6);
}

TEST(AllReplicated, BijectionSweep) {
  SplitMix64 rng(77);
  for (index_t n : {1, 7, 64, 301}) {
    for (int P : {1, 2, 5, 16}) {
      check_distribution(BlockDist(n, P));
      check_distribution(CyclicDist(n, P));

      std::vector<int> map(static_cast<std::size_t>(n));
      for (auto& m : map) m = static_cast<int>(rng.next_below(
          static_cast<std::uint64_t>(P)));
      check_distribution(IndirectDist(map, P));

      std::vector<index_t> sizes(static_cast<std::size_t>(P), 0);
      for (index_t i = 0; i < n; ++i)
        ++sizes[rng.next_below(static_cast<std::uint64_t>(P))];
      check_distribution(GeneralizedBlockDist(n, std::move(sizes)));

      for (index_t blk : {1, 3, 7})
        check_distribution(distrib::BlockCyclicDist(n, P, blk));
    }
  }
}

TEST(Chaos, MatchesReplicatedReference) {
  // The distributed table must answer exactly like the replicated
  // IndirectDist it was fed from.
  const index_t n = 40;
  const int P = 4;
  SplitMix64 rng(5);
  std::vector<int> map(static_cast<std::size_t>(n));
  for (auto& m : map) m = static_cast<int>(rng.next_below(P));
  IndirectDist ref(map, P);

  runtime::Machine machine(P);
  std::vector<std::vector<OwnerLocal>> answers(P);
  machine.run([&](runtime::Process& p) {
    auto mine = ref.owned_indices(p.rank());
    ChaosTranslationTable table(p, n, mine);
    // Every rank queries a different slice of all indices.
    std::vector<index_t> ask;
    for (index_t i = static_cast<index_t>(p.rank()); i < n; i += P)
      ask.push_back(i);
    answers[static_cast<std::size_t>(p.rank())] = table.query(p, ask);
  });
  for (int r = 0; r < P; ++r) {
    std::size_t k = 0;
    for (index_t i = static_cast<index_t>(r); i < n; i += P, ++k)
      EXPECT_EQ(answers[static_cast<std::size_t>(r)][k], ref.owner_local(i))
          << "rank " << r << " index " << i;
  }
}

TEST(Chaos, BuildCostScalesWithProblemSize) {
  // The all-to-all that builds the table must move ~N entries in total —
  // the asymptotic cost Table 3 attributes to the Indirect inspectors.
  const int P = 4;
  long long bytes_small = 0, bytes_large = 0;
  for (auto [n, out] : {std::pair<index_t, long long*>{200, &bytes_small},
                        std::pair<index_t, long long*>{800, &bytes_large}}) {
    runtime::Machine machine(P);
    CyclicDist ref(n, P);  // cyclic so nearly all entries cross ranks
    auto reports = machine.run([&](runtime::Process& p) {
      auto mine = ref.owned_indices(p.rank());
      ChaosTranslationTable table(p, n, mine);
    });
    long long total = 0;
    for (const auto& r : reports) total += r.stats.bytes;
    *out = total;
  }
  EXPECT_GE(bytes_large, 3 * bytes_small);
}

TEST(Chaos, EmptyQueriesParticipate) {
  const index_t n = 12;
  const int P = 3;
  BlockDist ref(n, P);
  runtime::Machine machine(P);
  std::vector<OwnerLocal> got;
  machine.run([&](runtime::Process& p) {
    auto mine = ref.owned_indices(p.rank());
    ChaosTranslationTable table(p, n, mine);
    std::vector<index_t> ask;
    if (p.rank() == 0) ask = {11, 0, 5};
    auto ans = table.query(p, ask);
    if (p.rank() == 0) got = ans;
  });
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0], ref.owner_local(11));
  EXPECT_EQ(got[1], ref.owner_local(0));
  EXPECT_EQ(got[2], ref.owner_local(5));
}

}  // namespace
}  // namespace bernoulli::distrib
