// Tests for the analysis subsystem (src/analysis/): critical-path
// extraction from span traces, the cost-model validation join, run-report
// (bernoulli.run.v1) round-tripping, report diffing, and the solve hooks.
//
// The headline acceptance test reconciles FOUR independent views of one
// 4-rank SpMV's communication — critical-path rank breakdowns, CommStats,
// the comm matrix, and the comm.* counters — exactly, and checks the
// critical path's total against the machine's own virtual clocks to the
// last bit (manual-compute mode makes the timeline purely deterministic).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <span>
#include <vector>

#include "analysis/critical_path.hpp"
#include "analysis/hooks.hpp"
#include "analysis/model_check.hpp"
#include "analysis/report.hpp"
#include "compiler/loopnest.hpp"
#include "distrib/distribution.hpp"
#include "formats/csr.hpp"
#include "runtime/machine.hpp"
#include "solvers/cg.hpp"
#include "solvers/dist_cg.hpp"
#include "spmd/dist_compile.hpp"
#include "spmd/matvec.hpp"
#include "support/counters.hpp"
#include "support/histogram.hpp"
#include "support/json_reader.hpp"
#include "support/trace.hpp"
#include "support/trace_cli.hpp"
#include "workloads/grid.hpp"

namespace bernoulli::analysis {
namespace {

using support::JsonValue;
using support::json_parse;

// RAII temp file so failing tests do not leave artifacts behind.
struct TempFile {
  std::string path;
  explicit TempFile(std::string p) : path(std::move(p)) {}
  ~TempFile() { std::remove(path.c_str()); }
};

TEST(CriticalPath, EmptyTraceYieldsEmptyReport) {
  support::trace_start();
  support::trace_stop();
  CriticalPathReport r = critical_path_current();
  EXPECT_EQ(r.nprocs, 0);
  EXPECT_EQ(r.total_us, 0.0);
  EXPECT_TRUE(r.ranks.empty());
  EXPECT_TRUE(r.steps.empty());
}

TEST(CriticalPath, SingleRankIsOneComputeSegment) {
  support::trace_start();
  runtime::Machine machine(1);
  machine.set_manual_compute(true);  // exact timeline: only charges count
  auto reports = machine.run([&](runtime::Process& p) {
    p.charge_seconds(100e-6);
    p.barrier();  // P=1 collective: zero-width span anchoring the finish
  });
  support::trace_stop();

  CriticalPathReport r = critical_path_current();
  ASSERT_EQ(r.nprocs, 1);
  EXPECT_DOUBLE_EQ(r.total_us, reports[0].virtual_time * 1e6);
  EXPECT_NEAR(r.total_us, 100.0, 1e-9);
  ASSERT_EQ(r.ranks.size(), 1u);
  EXPECT_DOUBLE_EQ(r.ranks[0].comm_us, 0.0);  // zero-width barrier
  EXPECT_DOUBLE_EQ(r.ranks[0].idle_us, 0.0);
  EXPECT_NEAR(r.ranks[0].compute_us, 100.0, 1e-9);
  EXPECT_EQ(r.ranks[0].sent_messages, 0);
  EXPECT_EQ(r.ranks[0].sent_bytes, 0);
  ASSERT_EQ(r.steps.size(), 1u);
  EXPECT_EQ(r.steps[0].kind, "compute");
  EXPECT_DOUBLE_EQ(r.steps[0].t1_us, r.total_us);
  EXPECT_DOUBLE_EQ(r.max_over_mean_compute, 1.0);
  EXPECT_DOUBLE_EQ(r.idle_fraction, 0.0);
}

// Hand-built 3-rank diamond: rank 0 feeds ranks 1 and 2; rank 1 feeds
// rank 2. CostModel{latency 1e-5 s, 1e8 B/s} and 800-byte messages give a
// 10 us send latency and an 18 us point-to-point charge, so every event
// time is computable by hand:
//
//   rank 0: charge 100us; send->1 [100,110]; send->2 [110,120]
//           arrivals: at rank 1 t=128, at rank 2 t=148
//   rank 1: recv<-0 [0,128]; charge 300us; send->2 [428,438]
//           arrival at rank 2 t=456
//   rank 2: charge 50us; recv<-0 [50,148]; recv<-1 [148,456]
//
// Finishes 120 / 438 / 456; computes 100 / 300 / 50 (max/mean exactly
// 2.0); idles 0 / 128 / (98+308)=406; critical path = compute on rank 0,
// message to rank 1, compute on rank 1, message to rank 2.
TEST(CriticalPath, DiamondDagMatchesHandComputation) {
  const std::vector<double> payload(100, 1.0);  // 800 bytes

  support::trace_start();
  runtime::Machine machine(3, runtime::CostModel{1e-5, 1e8});
  machine.set_manual_compute(true);  // exact timeline: only charges count
  auto reports = machine.run([&](runtime::Process& p) {
    std::span<const double> data(payload);
    switch (p.rank()) {
      case 0:
        p.charge_seconds(100e-6);
        p.send(1, /*tag=*/1, data);
        p.send(2, /*tag=*/2, data);
        break;
      case 1:
        (void)p.recv<double>(0, 1);
        p.charge_seconds(300e-6);
        p.send(2, /*tag=*/3, data);
        break;
      case 2:
        p.charge_seconds(50e-6);
        (void)p.recv<double>(0, 2);
        (void)p.recv<double>(1, 3);
        break;
    }
  });
  support::trace_stop();

  CriticalPathReport r = critical_path_current();
  ASSERT_EQ(r.nprocs, 3);

  const double kTol = 1e-6;
  EXPECT_NEAR(r.total_us, 456.0, kTol);
  ASSERT_EQ(r.ranks.size(), 3u);
  // Finishes agree bit-for-bit with the machine's own virtual clocks (in
  // manual-compute mode nothing advances the clock after the last event).
  for (int rank = 0; rank < 3; ++rank)
    EXPECT_DOUBLE_EQ(r.ranks[static_cast<std::size_t>(rank)].finish_us,
                     reports[static_cast<std::size_t>(rank)].virtual_time *
                         1e6)
        << "rank " << rank;
  EXPECT_NEAR(r.ranks[0].finish_us, 120.0, kTol);
  EXPECT_NEAR(r.ranks[1].finish_us, 438.0, kTol);
  EXPECT_NEAR(r.ranks[2].finish_us, 456.0, kTol);
  EXPECT_NEAR(r.ranks[0].compute_us, 100.0, kTol);
  EXPECT_NEAR(r.ranks[1].compute_us, 300.0, kTol);
  EXPECT_NEAR(r.ranks[2].compute_us, 50.0, kTol);
  EXPECT_NEAR(r.ranks[0].idle_us, 0.0, kTol);
  EXPECT_NEAR(r.ranks[1].idle_us, 128.0, kTol);
  EXPECT_NEAR(r.ranks[2].idle_us, 406.0, kTol);
  EXPECT_NEAR(r.ranks[0].send_us, 20.0, kTol);
  EXPECT_NEAR(r.ranks[1].send_us, 10.0, kTol);
  EXPECT_NEAR(r.ranks[2].send_us, 0.0, kTol);
  EXPECT_NEAR(r.ranks[0].slack_us, 336.0, kTol);
  EXPECT_NEAR(r.ranks[1].slack_us, 18.0, kTol);
  EXPECT_NEAR(r.ranks[2].slack_us, 0.0, kTol);
  EXPECT_EQ(r.ranks[0].sent_messages, 2);
  EXPECT_EQ(r.ranks[0].sent_bytes, 1600);
  EXPECT_EQ(r.ranks[1].sent_messages, 1);
  EXPECT_EQ(r.ranks[1].sent_bytes, 800);
  EXPECT_EQ(r.ranks[2].sent_messages, 0);

  EXPECT_NEAR(r.max_over_mean_compute, 2.0, kTol);  // 300 / mean(150)
  EXPECT_NEAR(r.idle_fraction, 534.0 / 1014.0, kTol);

  // The path: rank 0's compute feeds rank 1 through the first message,
  // rank 1's compute feeds rank 2 through the last.
  ASSERT_EQ(r.steps.size(), 4u);
  EXPECT_EQ(r.steps[0].kind, "compute");
  EXPECT_EQ(r.steps[0].rank, 0);
  EXPECT_NEAR(r.steps[0].t0_us, 0.0, kTol);
  EXPECT_NEAR(r.steps[0].t1_us, 110.0, kTol);  // includes the send latency
  EXPECT_EQ(r.steps[1].kind, "recv");
  EXPECT_EQ(r.steps[1].rank, 1);
  EXPECT_EQ(r.steps[1].from_rank, 0);
  EXPECT_NEAR(r.steps[1].t0_us, 110.0, kTol);  // flow start -> arrival
  EXPECT_NEAR(r.steps[1].t1_us, 128.0, kTol);
  EXPECT_EQ(r.steps[2].kind, "compute");
  EXPECT_EQ(r.steps[2].rank, 1);
  EXPECT_NEAR(r.steps[2].t0_us, 128.0, kTol);
  EXPECT_NEAR(r.steps[2].t1_us, 438.0, kTol);
  EXPECT_EQ(r.steps[3].kind, "recv");
  EXPECT_EQ(r.steps[3].rank, 2);
  EXPECT_EQ(r.steps[3].from_rank, 1);
  EXPECT_NEAR(r.steps[3].t0_us, 438.0, kTol);
  EXPECT_NEAR(r.steps[3].t1_us, 456.0, kTol);

  // Steps chain: contiguous in time, earliest first.
  for (std::size_t i = 1; i < r.steps.size(); ++i)
    EXPECT_DOUBLE_EQ(r.steps[i].t0_us, r.steps[i - 1].t1_us);
  EXPECT_DOUBLE_EQ(r.steps.back().t1_us, r.total_us);

  // The text render mentions every rank.
  std::string text = critical_path_text(r);
  EXPECT_NE(text.find("critical path"), std::string::npos);

  // JSON form round-trips through the strict parser.
  JsonValue parsed = json_parse(critical_path_json(r, 2));
  EXPECT_EQ(parsed.find("nprocs")->as_number(), 3);
  EXPECT_EQ(parsed.find("steps")->items.size(), 4u);
}

// The acceptance test: a real 4-rank distributed SpMV, reconciled across
// every view of the same run — the analysis' totals against the machine's
// virtual clocks (exact), and the per-rank traffic against CommStats, the
// comm matrix, and the comm.* counters (exact), both from the in-memory
// trace and after a round trip through an exported trace file and a
// written bernoulli.run.v1 report.
TEST(CriticalPath, FourRankSpmvReconcilesAllViews) {
  auto g = workloads::grid3d_7pt(4, 4, 3, 2, 21);
  formats::Csr a = formats::Csr::from_coo(g.matrix);
  const int P = 4;
  distrib::BlockDist rows(a.rows(), P);

  support::counters_reset();
  support::histograms_reset();
  support::trace_start();
  runtime::Machine machine(P);
  machine.set_manual_compute(true);  // only modeled comm advances the clock
  auto reports = machine.run([&](runtime::Process& p) {
    spmd::DistSpmv dist = spmd::build_dist_spmv(p, a, rows,  //
                                                spmd::Variant::kBernoulliMixed);
    Vector x_full(static_cast<std::size_t>(dist.sched.full_size()), 1.0);
    Vector y(static_cast<std::size_t>(dist.sched.owned), 0.0);
    dist.apply(p, x_full, y, /*tag=*/7);
    p.barrier();
  });
  support::trace_stop();

  CriticalPathReport r = critical_path_current();
  ASSERT_EQ(r.nprocs, P);

  // Total == the slowest rank's own virtual clock, to the last bit.
  double max_vt_us = 0.0;
  for (const auto& rep : reports)
    max_vt_us = std::max(max_vt_us, rep.virtual_time * 1e6);
  EXPECT_DOUBLE_EQ(r.total_us, max_vt_us);
  ASSERT_EQ(r.ranks.size(), static_cast<std::size_t>(P));
  for (int rank = 0; rank < P; ++rank) {
    const RankBreakdown& b = r.ranks[static_cast<std::size_t>(rank)];
    // The run ends in a barrier, so every rank finishes at the total
    // (up to a last-bit rounding difference in the rendezvous clocks).
    EXPECT_DOUBLE_EQ(b.finish_us, r.total_us) << "rank " << rank;
    EXPECT_NEAR(b.slack_us, 0.0, 1e-9) << "rank " << rank;
    // Per-rank traffic reconciles exactly with CommStats...
    const auto& stats = reports[static_cast<std::size_t>(rank)].stats;
    EXPECT_EQ(b.sent_messages, stats.messages) << "rank " << rank;
    EXPECT_EQ(b.sent_bytes, stats.bytes) << "rank " << rank;
  }

  // ...and with the comm matrix row sums...
  support::CommMatrixSnapshot mat = support::comm_matrix_snapshot();
  ASSERT_EQ(mat.nprocs, P);
  for (int src = 0; src < P; ++src) {
    long long row_msgs = 0, row_bytes = 0;
    for (int dst = 0; dst < P; ++dst) {
      row_msgs += mat.messages_at(src, dst);
      row_bytes += mat.bytes_at(src, dst);
    }
    EXPECT_EQ(r.ranks[static_cast<std::size_t>(src)].sent_messages, row_msgs);
    EXPECT_EQ(r.ranks[static_cast<std::size_t>(src)].sent_bytes, row_bytes);
  }

  // ...and with the comm.* counter registry in aggregate.
  long long counter_bytes = 0, counter_messages = 0;
  for (const auto& [name, v] : support::counters_snapshot().counts) {
    if (name.rfind("comm.", 0) != 0) continue;
    if (name.size() >= 6 && name.compare(name.size() - 6, 6, ".bytes") == 0)
      counter_bytes += v;
    if (name.size() >= 9 &&
        name.compare(name.size() - 9, 9, ".messages") == 0)
      counter_messages += v;
  }
  long long path_messages = 0, path_bytes = 0;
  for (const auto& b : r.ranks) {
    path_messages += b.sent_messages;
    path_bytes += b.sent_bytes;
  }
  ASSERT_GT(path_bytes, 0);
  EXPECT_EQ(path_messages, counter_messages);
  EXPECT_EQ(path_bytes, counter_bytes);

  // File round trip: the exported trace re-analyzes to the same report.
  TempFile trace_file("analysis_test_trace.json");
  {
    std::ofstream out(trace_file.path);
    out << support::trace_json();
  }
  CriticalPathReport from_file = critical_path_from_file(trace_file.path);
  EXPECT_EQ(from_file.nprocs, r.nprocs);
  EXPECT_DOUBLE_EQ(from_file.total_us, r.total_us);
  ASSERT_EQ(from_file.steps.size(), r.steps.size());
  for (std::size_t i = 0; i < r.steps.size(); ++i) {
    EXPECT_EQ(from_file.steps[i].kind, r.steps[i].kind);
    EXPECT_DOUBLE_EQ(from_file.steps[i].t1_us, r.steps[i].t1_us);
  }
  EXPECT_DOUBLE_EQ(from_file.idle_fraction, r.idle_fraction);

  // Report round trip: a written bernoulli.run.v1 report carries the same
  // critical path and parses back through the strict reader.
  TempFile report_file("analysis_test_report.json");
  {
    RunReport report("analysis_test");
    report.config("P", static_cast<long long>(P));
    report.metric("test.total_us", r.total_us);
    report.set_critical_path(r);
    report.write(report_file.path);
  }
  std::ifstream in(report_file.path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  JsonValue doc = json_parse(text);
  EXPECT_EQ(doc.find("schema")->as_string(), "bernoulli.run.v1");
  const JsonValue* cp = doc.find("critical_path");
  ASSERT_NE(cp, nullptr);
  EXPECT_EQ(cp->find("nprocs")->as_number(), P);
  EXPECT_DOUBLE_EQ(cp->find("total_us")->as_number(), r.total_us);
  long long doc_bytes = 0;
  for (const JsonValue& rb : cp->find("ranks")->items)
    doc_bytes += static_cast<long long>(rb.find("sent_bytes")->as_number());
  EXPECT_EQ(doc_bytes, path_bytes);
  auto metrics = report_metrics(doc);
  EXPECT_DOUBLE_EQ(metrics.at("test.total_us"), r.total_us);
}

TEST(ModelCheck, GridSpmvScoresLowAndDoctoredPlanScoresHigh) {
  auto grid = workloads::grid2d_5pt(30, 30, 1, 3);
  formats::Csr a = formats::Csr::from_coo(grid.matrix);
  const index_t n = a.rows();
  Vector x(static_cast<std::size_t>(n), 1.0), y(static_cast<std::size_t>(n));

  compiler::LoopNest nest{
      {{"i", n}, {"j", n}},
      {{"Y", {"i"}}, {{"A", {"i", "j"}}, {"X", {"j"}}}, 1.0},
  };
  compiler::Bindings bind;
  bind.bind_csr("A", a);
  bind.bind_dense_vector("X", ConstVectorView(x));
  bind.bind_dense_vector("Y", VectorView(y));
  auto k = compiler::compile(nest, bind);

  compiler::RunStats stats;
  compiler::Action act =
      compiler::multiply_accumulate(k.query(), /*target_rel=*/1, {2, 3});
  compiler::execute_interpreted(k.plan(), k.query(), act, &stats);

  ModelCheckReport good = model_check(k.plan(), stats);
  ASSERT_EQ(good.levels.size(), k.plan().levels.size());  // every level
  EXPECT_LT(good.error_score, 2.0);
  EXPECT_EQ(good.tuples_measured, stats.tuples);
  for (const LevelCheck& lv : good.levels) {
    EXPECT_GT(lv.produced, 0);
    EXPECT_GT(lv.ratio, 0.0);
  }

  // A plan whose statistics are off by 64x must score above threshold:
  // the validation loop exists to catch exactly this.
  compiler::Plan bad = k.plan();
  ASSERT_GE(bad.levels.size(), 2u);
  bad.levels[1].est_iterations *= 64.0;
  ModelCheckReport doctored = model_check(bad, stats);
  EXPECT_GT(doctored.error_score, 4.0);

  // The EXPLAIN-document overload joins to the same numbers, so offline
  // checks from report artifacts agree with in-process checks.
  ModelCheckReport from_doc =
      model_check(json_parse(k.explain_json()),
                  std::span<const compiler::LevelRunStats>(stats.levels),
                  stats.tuples);
  ASSERT_EQ(from_doc.levels.size(), good.levels.size());
  EXPECT_DOUBLE_EQ(from_doc.error_score, good.error_score);
  for (std::size_t i = 0; i < good.levels.size(); ++i) {
    EXPECT_EQ(from_doc.levels[i].var, good.levels[i].var);
    EXPECT_DOUBLE_EQ(from_doc.levels[i].est_produced,
                     good.levels[i].est_produced);
    EXPECT_EQ(from_doc.levels[i].produced, good.levels[i].produced);
  }

  // Renderings hold together.
  EXPECT_NE(model_check_text(good).find("error score"), std::string::npos);
  JsonValue parsed = json_parse(model_check_json(good, 2));
  EXPECT_EQ(parsed.find("levels")->items.size(), good.levels.size());
}

TEST(Report, DiffDetectsRegressionsByMetricDirection) {
  auto make_doc = [](double time_s, double speedup) {
    RunReport r("diff_test");
    r.metric("solve.time_s", time_s);
    r.metric("solve.speedup", speedup);
    return r.json();
  };
  JsonValue base = json_parse(make_doc(1.0, 4.0));

  // Within tolerance: ok.
  DiffResult same =
      diff_reports(base, json_parse(make_doc(1.1, 3.9)), /*tolerance=*/0.25);
  EXPECT_EQ(same.compared, 2);
  EXPECT_EQ(same.regressions, 0);
  EXPECT_TRUE(same.ok());

  // time_s is lower-is-better: a 2x slowdown regresses.
  DiffResult slow =
      diff_reports(base, json_parse(make_doc(2.0, 4.0)), 0.25);
  EXPECT_EQ(slow.regressions, 1);
  EXPECT_FALSE(slow.ok());

  // speedup is higher-is-better: halving it regresses, raising it never.
  DiffResult worse =
      diff_reports(base, json_parse(make_doc(1.0, 2.0)), 0.25);
  EXPECT_EQ(worse.regressions, 1);
  DiffResult better =
      diff_reports(base, json_parse(make_doc(0.5, 8.0)), 0.25);
  EXPECT_TRUE(better.ok());

  // The filter restricts the compared set.
  DiffResult filtered =
      diff_reports(base, json_parse(make_doc(9.0, 4.0)), 0.25, "speedup");
  EXPECT_EQ(filtered.compared, 1);
  EXPECT_TRUE(filtered.ok());

  // Disjoint metric names: the gate must FAIL, not silently pass.
  RunReport other("diff_test");
  other.metric("renamed.time_s", 1.0);
  DiffResult disjoint = diff_reports(base, json_parse(other.json()), 0.25);
  EXPECT_EQ(disjoint.compared, 0);
  EXPECT_FALSE(disjoint.ok());

  EXPECT_NE(diff_text(slow, 0.25).find("REGRESSED"), std::string::npos);
}

TEST(Report, ExecV1SnapshotsExposeTheSameMetricNames) {
  // A bernoulli.bench.exec.v1 snapshot (the committed BENCH_exec.json
  // shape) must surface the exact metric names a --report run emits, so
  // the two document generations can gate each other.
  const std::string exec_doc = R"({
    "schema": "bernoulli.bench.exec.v1",
    "cases": [
      {"matrix": "grid_P1", "format": "csr", "rows": 10, "nnz": 40,
       "engines": {
         "interpreted": {"seconds": 0.2, "ns_per_nnz": 50.0},
         "linked": {"seconds": 0.05, "ns_per_nnz": 12.5}},
       "speedup_linked_over_interpreted": 4.0}
    ]})";
  auto metrics = report_metrics(json_parse(exec_doc));
  EXPECT_DOUBLE_EQ(metrics.at("exec.grid_P1.csr.interpreted.ns_per_nnz"),
                   50.0);
  EXPECT_DOUBLE_EQ(metrics.at("exec.grid_P1.csr.linked.ns_per_nnz"), 12.5);
  EXPECT_DOUBLE_EQ(
      metrics.at("exec.grid_P1.csr.speedup_linked_over_interpreted"), 4.0);

  // Unknown documents are rejected loudly.
  EXPECT_THROW(report_metrics(json_parse(R"({"schema": "nope"})")),
               std::exception);
}

TEST(Report, SolveHooksRecordEveryRankOfACompiledSolve) {
  // Mirrors DistCompile.CompiledCgMatchesHandWritten's setup: a 2-rank
  // compiled CG solve, observed through the pre/post hooks installed by
  // RunReport::observe_solves().
  auto g = workloads::grid3d_7pt(4, 4, 3, 2, 85);
  formats::Csr a = formats::Csr::from_coo(g.matrix);
  const index_t n = a.rows();
  const int P = 2;
  distrib::BlockDist rows(n, P);
  Vector diag = solvers::extract_diagonal(a);
  Vector b(static_cast<std::size_t>(n), 1.0);

  solvers::CgOptions opts;
  opts.max_iterations = 40;
  opts.tolerance = 1e-10;

  RunReport report("hooks_test");
  report.observe_solves();
  EXPECT_TRUE(solve_hooks_active());

  runtime::Machine machine(P);
  machine.run([&](runtime::Process& p) {
    auto mine = rows.owned_indices(p.rank());
    Vector bl(mine.size()), dl(mine.size());
    for (std::size_t i = 0; i < mine.size(); ++i) {
      bl[i] = b[static_cast<std::size_t>(mine[i])];
      dl[i] = diag[static_cast<std::size_t>(mine[i])];
    }
    spmd::DistKernel k = spmd::compile_dist_matvec(p, a, rows);
    Vector xc(mine.size(), 0.0);
    (void)solvers::dist_cg_compiled(p, k, dl, bl, xc, opts);
  });

  JsonValue doc = json_parse(report.json());
  const JsonValue* solves = doc.find("solves");
  ASSERT_NE(solves, nullptr);
  ASSERT_EQ(solves->items.size(), static_cast<std::size_t>(P));
  for (int rank = 0; rank < P; ++rank) {
    const JsonValue& s = solves->items[static_cast<std::size_t>(rank)];
    EXPECT_EQ(s.find("solver")->as_string(), "dist_cg_compiled");
    EXPECT_EQ(s.find("rank")->as_number(), rank);  // sorted by rank
    EXPECT_EQ(s.find("nprocs")->as_number(), P);
    EXPECT_GT(s.find("iterations")->as_number(), 0);
    EXPECT_TRUE(s.find("converged")->boolean);
    EXPECT_GT(s.find("messages")->as_number(), 0);
    EXPECT_GT(s.find("bytes")->as_number(), 0);
    // The plan EXPLAIN rode along, as a real document.
    const JsonValue* plan = s.find("plan");
    ASSERT_NE(plan, nullptr);
    EXPECT_EQ(plan->find("schema")->as_string(), "bernoulli.explain.v1");
  }
}

TEST(Report, RunV1RoundTripsAndClearsHooksOnDestruction) {
  {
    RunReport report("roundtrip_test");
    report.config("flag", "value");
    report.config("count", static_cast<long long>(3));
    report.metric("a.first", 1.5);
    report.metric("a.speedup", 2.0);
    report.add_plan("p", R"({"schema": "bernoulli.explain.v1"})");
    CommCheck cc;
    cc.predicted_messages = cc.measured_messages = 4;
    cc.predicted_bytes = cc.measured_bytes = 256;
    report.add_comm_check("phase", cc);
    report.observe_solves();

    JsonValue doc = json_parse(report.json());
    EXPECT_EQ(doc.find("schema")->as_string(), "bernoulli.run.v1");
    EXPECT_EQ(doc.find("tool")->as_string(), "roundtrip_test");
    ASSERT_NE(doc.find("build"), nullptr);
    EXPECT_EQ(doc.find("config")->find("flag")->as_string(), "value");
    EXPECT_EQ(doc.find("metrics")->find("a.first")->as_number(), 1.5);
    ASSERT_NE(doc.find("plans")->find("p"), nullptr);
    const JsonValue* check = doc.find("comm_checks")->find("phase");
    ASSERT_NE(check, nullptr);
    EXPECT_EQ(check->find("measured_bytes")->as_number(), 256);
    // No machine ran: the critical path slot is an explicit null.
    EXPECT_EQ(doc.find("critical_path")->type,
              support::JsonValue::Type::kNull);
    // The text render accepts the full document.
    EXPECT_NE(report_text(doc).find("roundtrip_test"), std::string::npos);
  }
  // The destructor uninstalled the hooks observe_solves() placed.
  EXPECT_FALSE(solve_hooks_active());
}

// The deprecated --report=json alias must not steal an explicitly
// requested --report=<file> run report, regardless of which flag comes
// first on the command line. Callers dispatch on legacy_report_stdout().
TEST(ObsFlags, ExplicitReportFileWinsOverDeprecatedAlias) {
  using support::ObsOptions;
  using support::obs_parse_flag;

  {  // alias first, explicit file second
    ObsOptions o;
    EXPECT_TRUE(obs_parse_flag("--report=json", o));
    EXPECT_TRUE(obs_parse_flag("--report=out.json", o));
    EXPECT_EQ(o.report_path, "out.json");
    EXPECT_TRUE(o.legacy_report_json);
    EXPECT_FALSE(o.legacy_report_stdout());
    EXPECT_TRUE(o.active());
  }
  {  // explicit file first, alias second
    ObsOptions o;
    EXPECT_TRUE(obs_parse_flag("--report=out.json", o));
    EXPECT_TRUE(obs_parse_flag("--report=json", o));
    EXPECT_EQ(o.report_path, "out.json");
    EXPECT_FALSE(o.legacy_report_stdout());
  }
  {  // alias alone still selects the stdout report
    ObsOptions o;
    EXPECT_TRUE(obs_parse_flag("--report=json", o));
    EXPECT_TRUE(o.report_path.empty());
    EXPECT_TRUE(o.legacy_report_stdout());
  }
}

}  // namespace
}  // namespace bernoulli::analysis
