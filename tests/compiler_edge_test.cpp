// Compiler edge cases: one-variable loops, multi-factor statements,
// degenerate extents, plan cost-model sanity, and emission structure.
#include <gtest/gtest.h>

#include "compiler/loopnest.hpp"
#include "formats/formats.hpp"
#include "formats/sparse_vector.hpp"
#include "relation/array_views.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace bernoulli::compiler {
namespace {

using formats::Coo;
using formats::Csr;
using formats::SparseVector;
using formats::TripletBuilder;

TEST(CompileEdge, OneVariableVectorScale) {
  // Y(i) += 2 * X(i): a single-loop DOANY.
  Vector x{1.0, 2.0, 3.0}, y(3, 0.5);
  Bindings b;
  b.bind_dense_vector("X", ConstVectorView(x));
  b.bind_dense_vector("Y", VectorView(y));
  LoopNest nest{{{"i", 3}}, {{"Y", {"i"}}, {{"X", {"i"}}}, 2.0}};
  compile(nest, b).run();
  EXPECT_DOUBLE_EQ(y[0], 2.5);
  EXPECT_DOUBLE_EQ(y[1], 4.5);
  EXPECT_DOUBLE_EQ(y[2], 6.5);
}

TEST(CompileEdge, SparseVectorScatter) {
  // Y(i) += X(i) with X sparse: only stored positions update.
  SparseVector x(5, {{1, 10.0}, {4, 20.0}});
  Vector y(5, 1.0);
  Bindings b;
  b.bind_sparse_vector("X", x);
  b.bind_dense_vector("Y", VectorView(y));
  LoopNest nest{{{"i", 5}}, {{"Y", {"i"}}, {{"X", {"i"}}}, 1.0}};
  compile(nest, b).run();
  EXPECT_DOUBLE_EQ(y[0], 1.0);
  EXPECT_DOUBLE_EQ(y[1], 11.0);
  EXPECT_DOUBLE_EQ(y[4], 21.0);
}

TEST(CompileEdge, ThreeFactorHadamard) {
  // Y(i) += A(i,j) * X(j) * W(i): three value factors.
  TripletBuilder tb(3, 3);
  tb.add(0, 1, 2.0);
  tb.add(2, 0, 3.0);
  Csr a = Csr::from_coo(std::move(tb).build());
  Vector x{1.0, 10.0, 100.0}, w{2.0, 3.0, 4.0}, y(3, 0.0);
  Bindings b;
  b.bind_csr("A", a);
  b.bind_dense_vector("X", ConstVectorView(x));
  b.bind_dense_vector("W", ConstVectorView(w));
  b.bind_dense_vector("Y", VectorView(y));
  LoopNest nest{
      {{"i", 3}, {"j", 3}},
      {{"Y", {"i"}}, {{"A", {"i", "j"}}, {"X", {"j"}}, {"W", {"i"}}}, 1.0}};
  compile(nest, b).run();
  EXPECT_DOUBLE_EQ(y[0], 2.0 * 10.0 * 2.0);
  EXPECT_DOUBLE_EQ(y[1], 0.0);
  EXPECT_DOUBLE_EQ(y[2], 3.0 * 1.0 * 4.0);
}

TEST(CompileEdge, ZeroExtentLoopRunsNothing) {
  Vector x(0), y(0);
  // Empty matrix with zero rows: degenerate but must not crash.
  Coo a(0, 4, {});
  Csr acsr = Csr::from_coo(a);
  Vector xv(4, 1.0);
  Bindings b;
  b.bind_csr("A", acsr);
  b.bind_dense_vector("X", ConstVectorView(xv));
  b.bind_dense_vector("Y", VectorView(y));
  LoopNest nest{{{"i", 0}, {"j", 4}},
                {{"Y", {"i"}}, {{"A", {"i", "j"}}, {"X", {"j"}}}, 1.0}};
  EXPECT_NO_THROW(compile(nest, b).run());
}

TEST(CompileEdge, EmptySparseMatrixProducesZero) {
  Coo a(4, 4, {});
  Csr acsr = Csr::from_coo(a);
  Vector x(4, 1.0), y(4, 7.0);
  Bindings b;
  b.bind_csr("A", acsr);
  b.bind_dense_vector("X", ConstVectorView(x));
  b.bind_dense_vector("Y", VectorView(y));
  LoopNest nest{{{"i", 4}, {"j", 4}},
                {{"Y", {"i"}}, {{"A", {"i", "j"}}, {"X", {"j"}}}, 1.0}};
  compile(nest, b).run();
  for (double v : y) EXPECT_DOUBLE_EQ(v, 7.0);  // accumulation of nothing
}

TEST(CompileEdge, PlanCostPrefersSparseDriver) {
  // With a very sparse A, plans driven by A's enumeration must be cheaper
  // than dense interval scans; verify via the cost numbers.
  SplitMix64 rng(1);
  TripletBuilder tb(1000, 1000);
  for (int k = 0; k < 50; ++k)
    tb.add(rng.next_index(1000), rng.next_index(1000), 1.0);
  Coo coo = std::move(tb).build();
  Csr a = Csr::from_coo(coo);
  Vector x(1000, 1.0), y(1000, 0.0);
  Bindings b;
  b.bind_csr("A", a);
  b.bind_dense_vector("X", ConstVectorView(x));
  b.bind_dense_vector("Y", VectorView(y));
  LoopNest nest{{{"i", 1000}, {"j", 1000}},
                {{"Y", {"i"}}, {{"A", {"i", "j"}}, {"X", {"j"}}}, 1.0}};
  CompiledKernel k = compile(nest, b);
  // The inner level must be driven by A's column level (expected size
  // 0.05), not the interval (1000).
  const auto& inner = k.plan().levels[1];
  EXPECT_EQ(inner.method, JoinMethod::kEnumerate);
  EXPECT_EQ(k.query().relations[static_cast<std::size_t>(
                                    inner.drivers[0].rel)].view->name(),
            "A");
}

TEST(CompileEdge, DescribePlanMentionsEveryRelation) {
  TripletBuilder tb(4, 4);
  tb.add(1, 2, 1.0);
  Csr a = Csr::from_coo(std::move(tb).build());
  Vector x(4, 1.0), y(4, 0.0);
  Bindings b;
  b.bind_csr("A", a);
  b.bind_dense_vector("X", ConstVectorView(x));
  b.bind_dense_vector("Y", VectorView(y));
  LoopNest nest{{{"i", 4}, {"j", 4}},
                {{"Y", {"i"}}, {{"A", {"i", "j"}}, {"X", {"j"}}}, 1.0}};
  std::string desc = compile(nest, b).describe_plan();
  for (const char* name : {"A", "X", "Y", "I"})
    EXPECT_NE(desc.find(name), std::string::npos) << desc;
}

TEST(CompileEdge, EmitBalancedBraces) {
  SplitMix64 rng(2);
  TripletBuilder tb(6, 6);
  for (int k = 0; k < 10; ++k)
    tb.add(rng.next_index(6), rng.next_index(6), 1.0);
  Csr a = Csr::from_coo(std::move(tb).build());
  SparseVector x(6, {{2, 1.0}});
  Vector y(6, 0.0);
  Bindings b;
  b.bind_csr("A", a);
  b.bind_sparse_vector("X", x);
  b.bind_dense_vector("Y", VectorView(y));
  LoopNest nest{{{"i", 6}, {"j", 6}},
                {{"Y", {"i"}}, {{"A", {"i", "j"}}, {"X", {"j"}}}, 1.0}};
  for (bool merge : {true, false}) {
    PlannerOptions opts;
    opts.allow_merge = merge;
    std::string code = compile(nest, b, opts).emit();
    long depth = 0;
    for (char c : code) {
      if (c == '{') ++depth;
      if (c == '}') --depth;
      ASSERT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0) << code;
  }
}

TEST(CompileEdge, EllBindingMatchesDense) {
  // The compiler covers ITPACK storage through its view: same dense
  // program, different access methods.
  SplitMix64 rng(4);
  TripletBuilder tb(16, 12);
  for (int k = 0; k < 60; ++k)
    tb.add(rng.next_index(16), rng.next_index(12), rng.next_double(-1, 1));
  Coo coo = std::move(tb).build();
  formats::Ell ell = formats::Ell::from_coo(coo);

  Vector x(12);
  for (auto& v : x) v = rng.next_double(-1, 1);
  Vector y(16, 0.0), y_ref(16);
  formats::spmv(formats::Dense::from_coo(coo), x, y_ref);

  Bindings b;
  b.bind_ell("A", ell);
  b.bind_dense_vector("X", ConstVectorView(x));
  b.bind_dense_vector("Y", VectorView(y));
  LoopNest nest{{{"i", 16}, {"j", 12}},
                {{"Y", {"i"}}, {{"A", {"i", "j"}}, {"X", {"j"}}}, 1.0}};
  CompiledKernel k = compile(nest, b);
  k.run();
  for (std::size_t i = 0; i < 16; ++i) ASSERT_NEAR(y[i], y_ref[i], 1e-12);
  // Emission mentions the ELL arrays.
  EXPECT_NE(k.emit().find("A_ROWNNZ"), std::string::npos);
}

TEST(CompileEdge, RepeatedRunsAccumulate) {
  TripletBuilder tb(2, 2);
  tb.add(0, 0, 1.0);
  Csr a = Csr::from_coo(std::move(tb).build());
  Vector x(2, 1.0), y(2, 0.0);
  Bindings b;
  b.bind_csr("A", a);
  b.bind_dense_vector("X", ConstVectorView(x));
  b.bind_dense_vector("Y", VectorView(y));
  LoopNest nest{{{"i", 2}, {"j", 2}},
                {{"Y", {"i"}}, {{"A", {"i", "j"}}, {"X", {"j"}}}, 1.0}};
  CompiledKernel k = compile(nest, b);
  k.run();
  k.run();
  k.run();
  EXPECT_DOUBLE_EQ(y[0], 3.0);  // += semantics, three evaluations
}

}  // namespace
}  // namespace bernoulli::compiler
