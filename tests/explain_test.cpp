// EXPLAIN renderer tests: lock the text schema with a golden transcript,
// then sweep every storage binding the planner supports and require that
// both the text and JSON forms render (and that the JSON actually parses)
// for every plan the planner produces. Also checks that the executor
// counters agree with the plan's ground truth (tuples == nnz for matvec).
#include <gtest/gtest.h>

#include <cctype>
#include <string>

#include "compiler/loopnest.hpp"
#include "formats/formats.hpp"
#include "formats/sparse_vector.hpp"
#include "relation/array_views.hpp"
#include "relation/hash_index.hpp"
#include "support/counters.hpp"
#include "support/rng.hpp"

namespace bernoulli::compiler {
namespace {

using formats::Coo;
using formats::TripletBuilder;

// ---- minimal recursive-descent JSON validity checker ----------------------
// Accepts exactly RFC 8259 JSON; returns false on trailing garbage.

struct JsonCursor {
  const std::string& s;
  std::size_t i = 0;

  void ws() {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\n' || s[i] == '\t' ||
                            s[i] == '\r'))
      ++i;
  }
  bool eat(char c) {
    ws();
    if (i < s.size() && s[i] == c) {
      ++i;
      return true;
    }
    return false;
  }
  bool lit(const char* word) {
    std::size_t n = std::char_traits<char>::length(word);
    if (s.compare(i, n, word) != 0) return false;
    i += n;
    return true;
  }
  bool string() {
    if (!eat('"')) return false;
    while (i < s.size() && s[i] != '"') {
      if (s[i] == '\\') {
        ++i;
        if (i >= s.size()) return false;
      }
      ++i;
    }
    return eat('"');
  }
  bool number() {
    ws();
    std::size_t start = i;
    if (i < s.size() && s[i] == '-') ++i;
    while (i < s.size() &&
           (std::isdigit(static_cast<unsigned char>(s[i])) || s[i] == '.' ||
            s[i] == 'e' || s[i] == 'E' || s[i] == '+' || s[i] == '-'))
      ++i;
    return i > start;
  }
  bool value() {
    ws();
    if (i >= s.size()) return false;
    switch (s[i]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return lit("true");
      case 'f': return lit("false");
      case 'n': return lit("null");
      default: return number();
    }
  }
  bool object() {
    if (!eat('{')) return false;
    if (eat('}')) return true;
    do {
      ws();
      if (!string() || !eat(':') || !value()) return false;
    } while (eat(','));
    return eat('}');
  }
  bool array() {
    if (!eat('[')) return false;
    if (eat(']')) return true;
    do {
      if (!value()) return false;
    } while (eat(','));
    return eat(']');
  }
};

bool valid_json(const std::string& s) {
  JsonCursor c{s};
  if (!c.value()) return false;
  c.ws();
  return c.i == s.size();
}

// ---- fixtures -------------------------------------------------------------

LoopNest matvec_nest(index_t rows, index_t cols) {
  return {{{"i", rows}, {"j", cols}},
          {{"Y", {"i"}}, {{"A", {"i", "j"}}, {"X", {"j"}}}, 1.0}};
}

TEST(Explain, GoldenCsrMatvecText) {
  TripletBuilder tb(3, 3);
  tb.add(0, 0, 1.0);
  tb.add(0, 2, 2.0);
  tb.add(1, 1, 3.0);
  tb.add(2, 0, 4.0);
  tb.add(2, 2, 5.0);
  Coo coo = std::move(tb).build();
  formats::Csr csr = formats::Csr::from_coo(coo);
  Vector x(3, 1.0), y(3, 0.0);
  Bindings b;
  b.bind_csr("A", csr);
  b.bind_dense_vector("X", ConstVectorView(x));
  b.bind_dense_vector("Y", VectorView(y));
  auto k = compile(matvec_nest(3, 3), b);

  // The exact transcript is the contract: docs/ARCHITECTURE.md and the
  // README quote this format. Update both if you change the renderer.
  const char* golden =
      "plan: 2 levels, est. total cost 24\n"
      "for i: enumerate\n"
      "  driver I[0] binds i  (dense, sorted, search O(1), E[n]=3, filters, "
      "order-free)\n"
      "  probe  Y[0] binds i  (dense, sorted, search O(1), E[n]=3, writes)\n"
      "  probe  A[0] binds i  (dense, sorted, search O(1), E[n]=3, filters)\n"
      "  est 3 bindings, cost 9 per outer iteration\n"
      "for j: enumerate\n"
      "  driver A[1] binds j  (sorted, search O(log n), E[n]=1.66667, "
      "filters)\n"
      "  probe  I[1] binds j  (dense, sorted, search O(1), E[n]=3, filters, "
      "order-free)\n"
      "  probe  X[0] binds j  (dense, sorted, search O(1), E[n]=3)\n"
      "  est 1.66667 bindings, cost 5 per outer iteration\n"
      "parallel: outer level i chunked across threads (disjoint output "
      "rows)\n"
      "specialize: every level enumerates a flat shape and every probe "
      "lowers to inline checks or binary searches\n"
      "level 0: dense 3\n"
      "level 1: compressed\n";
  EXPECT_EQ(k.explain(), golden);

  std::string j = k.explain_json();
  EXPECT_TRUE(valid_json(j)) << j;
  EXPECT_NE(j.find("\"schema\":\"bernoulli.explain.v1\""), std::string::npos);
  EXPECT_NE(j.find("\"total_cost\":24"), std::string::npos);
  EXPECT_NE(j.find("\"method\":\"enumerate\""), std::string::npos);
  EXPECT_NE(j.find("\"descriptors\":[\"dense 3\",\"compressed\"]"),
            std::string::npos);
  // Pretty-printed form must parse too.
  EXPECT_TRUE(valid_json(k.explain_json(2)));
}

TEST(Explain, DescriptorFooterNamesBlockedAndSlicedLevels) {
  // An 8x8 block-dense matrix: 4x4 BCSR stores two block rows; SELL-C-s
  // slices the same matrix into chunks of 4 sorted within sigma=8 windows.
  TripletBuilder tb(8, 8);
  for (index_t bi : {0, 4})
    for (index_t r = 0; r < 4; ++r)
      for (index_t c = 0; c < 4; ++c)
        tb.add(bi + r, bi + c, 1.0 + bi + r + c);
  Coo coo = std::move(tb).build();
  Vector x(8, 1.0), y(8, 0.0);
  {
    formats::Bsr bsr = formats::Bsr::from_coo(coo, 4);
    Bindings b;
    b.bind_bsr("A", bsr);
    b.bind_dense_vector("X", ConstVectorView(x));
    b.bind_dense_vector("Y", VectorView(y));
    auto k = compile(matvec_nest(8, 8), b);
    const std::string text = k.explain();
    EXPECT_NE(text.find("level 1: blocked 4x4\n"), std::string::npos) << text;
    EXPECT_NE(k.explain_json().find("\"blocked 4x4\""), std::string::npos);
  }
  {
    formats::Sell sell = formats::Sell::from_coo(coo, 4, 8);
    Bindings b;
    b.bind_sell("A", sell);
    b.bind_dense_vector("X", ConstVectorView(x));
    b.bind_dense_vector("Y", VectorView(y));
    auto k = compile(matvec_nest(8, 8), b);
    const std::string text = k.explain();
    EXPECT_NE(text.find("level 1: sliced C=4 sigma=8\n"), std::string::npos)
        << text;
    EXPECT_NE(k.explain_json().find("\"sliced C=4 sigma=8\""),
              std::string::npos);
  }
}

TEST(Explain, MergeJoinRendered) {
  TripletBuilder tb(6, 6);
  SplitMix64 rng(11);
  for (int k = 0; k < 14; ++k)
    tb.add(rng.next_index(6), rng.next_index(6), rng.next_double(0.5, 1.5));
  Coo coo = std::move(tb).build();
  formats::Csr csr = formats::Csr::from_coo(coo);
  formats::SparseVector sx(6, {{1, 2.0}, {4, -1.0}});
  Vector y(6, 0.0);
  Bindings b;
  b.bind_csr("A", csr);
  b.bind_sparse_vector("X", sx);
  b.bind_dense_vector("Y", VectorView(y));
  auto k = compile(matvec_nest(6, 6), b);

  std::string text = k.explain();
  EXPECT_NE(text.find("merge-join of 2"), std::string::npos) << text;
  std::string j = k.explain_json();
  EXPECT_TRUE(valid_json(j)) << j;
  EXPECT_NE(j.find("\"method\":\"merge\""), std::string::npos);
}

// Every storage the planner sweep exercises must EXPLAIN in both forms.
enum class Storage { kCsr, kCcs, kCoo, kEll, kDenseMatrix, kCsrHashed };

class ExplainSweep : public ::testing::TestWithParam<Storage> {};

TEST_P(ExplainSweep, RendersTextAndJson) {
  const index_t rows = 9, cols = 7, nnz = 23;
  SplitMix64 rng(5);
  TripletBuilder tb(rows, cols);
  for (index_t k = 0; k < nnz; ++k)
    tb.add(rng.next_index(rows), rng.next_index(cols),
           rng.next_double(-1, 1));
  Coo coo = std::move(tb).build();

  Vector x(static_cast<std::size_t>(cols), 1.0);
  Vector y(static_cast<std::size_t>(rows), 0.0);
  formats::Csr csr = formats::Csr::from_coo(coo);
  formats::Ccs ccs = formats::Ccs::from_coo(coo);
  formats::Ell ell = formats::Ell::from_coo(coo);
  formats::Dense dm = formats::Dense::from_coo(coo);
  relation::CsrView csr_base("A", csr);
  relation::HashIndexedView hashed(csr_base, 1);

  Bindings b;
  switch (GetParam()) {
    case Storage::kCsr: b.bind_csr("A", csr); break;
    case Storage::kCcs: b.bind_ccs("A", ccs); break;
    case Storage::kCoo: b.bind_coo("A", coo); break;
    case Storage::kEll: b.bind_ell("A", ell); break;
    case Storage::kDenseMatrix: b.bind_dense_matrix("A", dm); break;
    case Storage::kCsrHashed:
      b.bind_view("A", &hashed, {0, 1}, /*sparse=*/true);
      break;
  }
  b.bind_dense_vector("X", ConstVectorView(x));
  b.bind_dense_vector("Y", VectorView(y));
  auto k = compile(matvec_nest(rows, cols), b);

  std::string text = k.explain();
  EXPECT_EQ(text.rfind("plan: 2 levels", 0), 0u) << text;
  EXPECT_NE(text.find("for i:"), std::string::npos) << text;
  EXPECT_NE(text.find("for j:"), std::string::npos) << text;
  EXPECT_NE(text.find("est "), std::string::npos) << text;

  std::string j = k.explain_json();
  EXPECT_TRUE(valid_json(j)) << j;
  EXPECT_NE(j.find("\"schema\":\"bernoulli.explain.v1\""), std::string::npos);
  EXPECT_NE(j.find("\"var\":\"i\""), std::string::npos);
  EXPECT_NE(j.find("\"var\":\"j\""), std::string::npos);
  EXPECT_TRUE(valid_json(k.explain_json(4)));
}

INSTANTIATE_TEST_SUITE_P(AllStorages, ExplainSweep,
                         ::testing::Values(Storage::kCsr, Storage::kCcs,
                                           Storage::kCoo, Storage::kEll,
                                           Storage::kDenseMatrix,
                                           Storage::kCsrHashed));

// The estimate the plan prints and the work the executor counts must talk
// about the same thing: for a matvec with dense X every stored nonzero of
// A produces exactly one action tuple.
TEST(Explain, CountersMatchPlanGroundTruth) {
  const index_t n = 12;
  SplitMix64 rng(7);
  TripletBuilder tb(n, n);
  for (int k = 0; k < 30; ++k)
    tb.add(rng.next_index(n), rng.next_index(n), rng.next_double(-1, 1));
  Coo coo = std::move(tb).build();  // builder dedupes: nnz() is exact
  formats::Csr csr = formats::Csr::from_coo(coo);
  Vector x(static_cast<std::size_t>(n), 1.0);
  Vector y(static_cast<std::size_t>(n), 0.0);
  Bindings b;
  b.bind_csr("A", csr);
  b.bind_dense_vector("X", ConstVectorView(x));
  b.bind_dense_vector("Y", VectorView(y));
  auto k = compile(matvec_nest(n, n), b);

  support::counters_reset();
  k.run();
  auto snap = support::counters_snapshot();
  EXPECT_EQ(snap.counts["executor.runs"], 1);
  EXPECT_EQ(snap.counts["executor.tuples"], csr.nnz());
  EXPECT_EQ(snap.counts["executor.probe_misses"], 0);
}

}  // namespace
}  // namespace bernoulli::compiler
