// Unit tests for the log2 histogram substrate (support/histogram.hpp):
// bucket geometry, labels, registry identity, and the text/JSON
// renderings the trace exporter embeds.
#include <gtest/gtest.h>

#include <limits>

#include "support/histogram.hpp"
#include "support/json_reader.hpp"

namespace bernoulli::support {
namespace {

TEST(Log2Histogram, BucketGeometry) {
  // Bucket 0 holds value 0 (and negatives clamp there); bucket k >= 1
  // holds [2^(k-1), 2^k).
  EXPECT_EQ(Log2Histogram::bucket_of(-5), 0);
  EXPECT_EQ(Log2Histogram::bucket_of(0), 0);
  EXPECT_EQ(Log2Histogram::bucket_of(1), 1);
  EXPECT_EQ(Log2Histogram::bucket_of(2), 2);
  EXPECT_EQ(Log2Histogram::bucket_of(3), 2);
  EXPECT_EQ(Log2Histogram::bucket_of(4), 3);
  EXPECT_EQ(Log2Histogram::bucket_of(7), 3);
  EXPECT_EQ(Log2Histogram::bucket_of(8), 4);
  EXPECT_EQ(Log2Histogram::bucket_of(1023), 10);
  EXPECT_EQ(Log2Histogram::bucket_of(1024), 11);
  // Everything past the covered range clamps into the last bucket.
  EXPECT_EQ(Log2Histogram::bucket_of(std::numeric_limits<long long>::max()),
            Log2Histogram::kBuckets - 1);
}

TEST(Log2Histogram, PowerOfTwoBoundaries) {
  // Exact powers of two open a new bucket; one less closes the previous
  // one. Sweep every boundary the bucket grid resolves, then the
  // open-ended last bucket.
  for (int k = 1; k <= 37; ++k) {
    EXPECT_EQ(Log2Histogram::bucket_of(1LL << k), k + 1) << "2^" << k;
    EXPECT_EQ(Log2Histogram::bucket_of((1LL << k) - 1), k) << "2^" << k
                                                           << " - 1";
  }
  EXPECT_EQ(Log2Histogram::bucket_of((1LL << 38) - 1), 38);
  EXPECT_EQ(Log2Histogram::bucket_of(1LL << 38), 39);
  EXPECT_EQ(Log2Histogram::bucket_of(1LL << 39), 39);  // clamps, no 40
}

TEST(Log2Histogram, FlushRepresentativeRoundTrips) {
  // The linked executor's counter flush re-books per-thread shard grids
  // into the registry by synthesizing one representative value per bucket
  // (0 for bucket 0, 2^(b-1) otherwise). That convention is only sound if
  // every representative maps back to its own bucket — lock it here so
  // bucket-geometry changes cannot silently skew merged histograms.
  for (int b = 0; b < Log2Histogram::kBuckets; ++b) {
    const long long rep = b == 0 ? 0 : 1LL << (b - 1);
    EXPECT_EQ(Log2Histogram::bucket_of(rep), b) << "bucket " << b;
  }
}

TEST(Log2Histogram, BucketLabels) {
  EXPECT_EQ(Log2Histogram::bucket_label(0), "0");
  EXPECT_EQ(Log2Histogram::bucket_label(1), "1");
  EXPECT_EQ(Log2Histogram::bucket_label(2), "2-3");
  EXPECT_EQ(Log2Histogram::bucket_label(3), "4-7");
  EXPECT_EQ(Log2Histogram::bucket_label(Log2Histogram::kBuckets - 1),
            std::to_string(1LL << (Log2Histogram::kBuckets - 2)) + "+");
}

TEST(Log2Histogram, AddTotalReset) {
  Log2Histogram h;
  h.add(0);
  h.add(5);
  h.add(5);
  h.add(100, 3);
  EXPECT_EQ(h.bucket(0), 1);
  EXPECT_EQ(h.bucket(3), 2);    // 5 lands in [4,7]
  EXPECT_EQ(h.bucket(7), 3);    // 100 lands in [64,127]
  EXPECT_EQ(h.total(), 6);
  h.reset();
  EXPECT_EQ(h.total(), 0);
}

TEST(HistogramRegistry, SameNameSameHistogram) {
  Log2Histogram& a = histogram("test.hist.same");
  Log2Histogram& b = histogram("test.hist.same");
  EXPECT_EQ(&a, &b);
  a.reset();
  a.add(1);
  b.add(1);
  EXPECT_EQ(a.total(), 2);
}

TEST(HistogramRegistry, SnapshotAndRenderings) {
  histograms_reset();
  histogram("test.hist.empty");  // registered, never fed
  histogram("test.hist.render").add(3, 4);

  auto snap = histograms_snapshot();
  ASSERT_TRUE(snap.count("test.hist.render"));
  EXPECT_EQ(snap["test.hist.render"][2], 4);  // 3 lands in [2,3]

  std::string text = histograms_text();
  EXPECT_NE(text.find("test.hist.render"), std::string::npos);
  EXPECT_NE(text.find("2-3"), std::string::npos);
  // Empty histograms are skipped by default...
  EXPECT_EQ(text.find("test.hist.empty"), std::string::npos);
  // ...and shown when asked for.
  EXPECT_NE(histograms_text(/*include_empty=*/true).find("test.hist.empty"),
            std::string::npos);

  JsonValue doc = json_parse(histograms_json());
  const JsonValue* h = doc.find("test.hist.render");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->find("total")->as_number(), 4);
  const JsonValue* buckets = h->find("buckets");
  ASSERT_TRUE(buckets->is_array());
  ASSERT_EQ(buckets->items.size(), 1u);  // empty buckets elided
  EXPECT_EQ(buckets->items[0].find("range")->as_string(), "2-3");
  EXPECT_EQ(buckets->items[0].find("count")->as_number(), 4);
}

}  // namespace
}  // namespace bernoulli::support
