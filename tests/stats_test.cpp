// Matrix profiling and the Table-1 format recommender: the heuristic must
// point at each suite matrix's empirically winning (or near-winning)
// format family.
#include <gtest/gtest.h>

#include "workloads/grid.hpp"
#include "workloads/stats.hpp"
#include "workloads/suite.hpp"

namespace bernoulli::workloads {
namespace {

using formats::Kind;

TEST(Profile, GridIsBandedAndUniform) {
  auto p = profile_matrix(suite_matrix("gr_30_30").matrix);
  EXPECT_EQ(p.rows, 900);
  EXPECT_GT(p.diagonal_fill, 0.8);
  EXPECT_LE(p.num_diagonals, 16);
  EXPECT_LT(p.row_cv, 0.3);
  EXPECT_TRUE(p.structurally_symmetric);
}

TEST(Profile, MemplusIsSkewed) {
  auto p = profile_matrix(suite_matrix("memplus").matrix);
  EXPECT_GT(p.row_cv, 1.0);
  EXPECT_GT(static_cast<double>(p.max_row), 10 * p.avg_row);
  EXPECT_LT(p.diagonal_fill, 0.1);
}

TEST(Profile, DofBlockDetection) {
  auto g5 = grid3d_7pt(3, 3, 3, 5, 1);
  EXPECT_EQ(profile_matrix(g5.matrix).dof_block, 5);
  auto g1 = grid2d_5pt(6, 6, 1, 2);
  EXPECT_EQ(profile_matrix(g1.matrix).dof_block, 1);
  // dof-6 (bcsstm27 analogue) detected as 6 (also divisible by 2 and 3,
  // but the largest qualifying block wins).
  EXPECT_EQ(profile_matrix(suite_matrix("bcsstm27").matrix).dof_block, 6);
}

TEST(Recommend, SuiteWinnersMatchTable1) {
  // The empirical winners from bench_table1_formats (Diagonal for banded
  // stencils, JDiag for the skewed/irregular pair, CRS family for the
  // block matrices where BS95/CRS tie).
  EXPECT_EQ(recommend_format(profile_matrix(suite_matrix("small").matrix)).kind,
            Kind::kDia);
  EXPECT_EQ(
      recommend_format(profile_matrix(suite_matrix("medium").matrix)).kind,
      Kind::kDia);
  EXPECT_EQ(
      recommend_format(profile_matrix(suite_matrix("gr_30_30").matrix)).kind,
      Kind::kDia);
  EXPECT_EQ(
      recommend_format(profile_matrix(suite_matrix("sherman1").matrix)).kind,
      Kind::kDia);
  EXPECT_EQ(
      recommend_format(profile_matrix(suite_matrix("memplus").matrix)).kind,
      Kind::kJds);
  auto bus = recommend_format(profile_matrix(suite_matrix("685_bus").matrix));
  EXPECT_NE(bus.kind, Kind::kDia) << bus.reason;  // Diagonal collapses there
  EXPECT_NE(bus.kind, Kind::kEll) << bus.reason;  // so does ITPACK
}

TEST(Recommend, ReasonsAreHumanReadable) {
  auto rec = recommend_format(profile_matrix(suite_matrix("memplus").matrix));
  EXPECT_FALSE(rec.reason.empty());
  EXPECT_NE(rec.reason.find("skewed"), std::string::npos);
}

TEST(Profile, EmptyAndTinyMatrices) {
  formats::Coo empty(0, 0, {});
  auto p = profile_matrix(empty);
  EXPECT_EQ(p.nnz, 0);

  formats::TripletBuilder b(1, 1);
  b.add(0, 0, 1.0);
  auto p1 = profile_matrix(std::move(b).build());
  EXPECT_EQ(p1.num_diagonals, 1);
  EXPECT_DOUBLE_EQ(p1.diagonal_fill, 1.0);
  EXPECT_TRUE(p1.structurally_symmetric);
}

}  // namespace
}  // namespace bernoulli::workloads
