// Multicolor Gauss-Seidel (the dependence-bearing kernel BlockSolve's
// coloring parallelizes) and distributed GMRES.
#include <gtest/gtest.h>

#include <cmath>

#include "distrib/distribution.hpp"
#include "solvers/dist_gmres.hpp"
#include "solvers/gauss_seidel.hpp"
#include "support/rng.hpp"
#include "workloads/bs_order.hpp"
#include "workloads/grid.hpp"

namespace bernoulli::solvers {
namespace {

using formats::Csr;

TEST(GaussSeidel, SweepReducesResidual) {
  auto g = workloads::grid2d_5pt(8, 8, 1, 1);
  Csr a = Csr::from_coo(g.matrix);
  const auto n = static_cast<std::size_t>(a.rows());
  Vector b(n, 1.0), x(n, 0.0), r(n);

  auto residual = [&] {
    spmv(a, x, r);
    value_t s = 0;
    for (std::size_t i = 0; i < n; ++i) {
      value_t d = b[i] - r[i];
      s += d * d;
    }
    return std::sqrt(s);
  };
  double r0 = residual();
  gauss_seidel_sweep(a, b, x);
  double r1 = residual();
  gauss_seidel_sweep(a, b, x);
  double r2 = residual();
  EXPECT_LT(r1, r0);
  EXPECT_LT(r2, r1);
}

TEST(GaussSeidel, SolveConverges) {
  auto g = workloads::grid2d_5pt(6, 6, 1, 2);
  Csr a = Csr::from_coo(g.matrix);
  const auto n = static_cast<std::size_t>(a.rows());
  SplitMix64 rng(3);
  Vector x_true(n);
  for (auto& v : x_true) v = rng.next_double(-1, 1);
  Vector b(n);
  spmv(a, x_true, b);
  Vector x(n, 0.0);
  GsResult res = gauss_seidel_solve(a, b, x, 500, 1e-12);
  EXPECT_TRUE(res.converged);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-8);
}

TEST(GaussSeidel, MulticolorSweepMatchesSequentialOnColoredMatrix) {
  // Color-major permuted matrix with SINGLETON cliques: rows within one
  // color are pairwise non-adjacent, so the multicolor sweep — even
  // processing each color in reverse — must equal the plain sequential
  // sweep exactly.
  auto g = workloads::grid3d_7pt(4, 4, 3, 1, 4);
  auto ord = workloads::blocksolve_ordering(g.matrix, 1, /*max_clique=*/1);
  auto bs = formats::BsMatrix::build(g.matrix, ord);
  Csr pa = Csr::from_coo(bs.to_coo_permuted());
  const auto n = static_cast<std::size_t>(pa.rows());

  SplitMix64 rng(5);
  Vector b(n);
  for (auto& v : b) v = rng.next_double(-1, 1);

  Vector x_seq(n, 0.0), x_mc(n, 0.0);
  for (int sweep = 0; sweep < 3; ++sweep) {
    gauss_seidel_sweep(pa, b, x_seq);
    gauss_seidel_multicolor_sweep(pa, ord.color_ptr, b, x_mc);
  }
  for (std::size_t i = 0; i < n; ++i)
    ASSERT_DOUBLE_EQ(x_mc[i], x_seq[i]) << "row " << i;
}

TEST(GaussSeidel, RejectsZeroDiagonal) {
  formats::TripletBuilder tb(2, 2);
  tb.add(0, 1, 1.0);
  tb.add(1, 0, 1.0);
  Csr a = Csr::from_coo(std::move(tb).build());
  Vector b(2, 1.0), x(2, 0.0);
  EXPECT_THROW(gauss_seidel_sweep(a, b, x), Error);
}

// ---------------------------------------------------------------- GMRES

Csr unsymmetric_grid(index_t nx, index_t ny, std::uint64_t seed) {
  auto g = workloads::grid2d_5pt(nx, ny, 1, seed);
  formats::TripletBuilder b(g.matrix.rows(), g.matrix.cols());
  auto rowind = g.matrix.rowind();
  auto colind = g.matrix.colind();
  auto vals = g.matrix.vals();
  for (index_t k = 0; k < g.matrix.nnz(); ++k) {
    value_t v = vals[k];
    if (colind[k] > rowind[k]) v *= 0.7;
    b.add(rowind[k], colind[k], v);
  }
  return Csr::from_coo(std::move(b).build());
}

TEST(DistGmres, MatchesSequentialGmres) {
  Csr a = unsymmetric_grid(8, 6, 11);
  const index_t n = a.rows();
  SplitMix64 rng(6);
  Vector b(static_cast<std::size_t>(n));
  for (auto& v : b) v = rng.next_double(-1, 1);

  GmresOptions opts;
  opts.restart = 12;
  opts.max_iterations = 300;
  opts.tolerance = 1e-11;
  Vector x_seq(static_cast<std::size_t>(n), 0.0);
  GmresResult seq = gmres(a, b, x_seq, opts);
  ASSERT_TRUE(seq.converged);

  const int P = 4;
  distrib::BlockDist rows(n, P);
  Vector x_dist(static_cast<std::size_t>(n), 0.0);
  std::vector<GmresResult> results(P);
  std::mutex mu;
  runtime::Machine machine(P);
  machine.run([&](runtime::Process& p) {
    spmd::DistSpmv dist =
        spmd::build_dist_spmv(p, a, rows, spmd::Variant::kBernoulliMixed);
    auto mine = rows.owned_indices(p.rank());
    Vector bl(mine.size()), xl(mine.size(), 0.0);
    for (std::size_t k = 0; k < mine.size(); ++k)
      bl[k] = b[static_cast<std::size_t>(mine[k])];
    GmresResult res = dist_gmres(p, dist, bl, xl, opts);
    std::lock_guard<std::mutex> lk(mu);
    results[static_cast<std::size_t>(p.rank())] = res;
    for (std::size_t k = 0; k < mine.size(); ++k)
      x_dist[static_cast<std::size_t>(mine[k])] = xl[k];
  });

  for (const auto& r : results) {
    EXPECT_TRUE(r.converged);
    EXPECT_EQ(r.iterations, seq.iterations);
  }
  for (std::size_t i = 0; i < x_dist.size(); ++i)
    ASSERT_NEAR(x_dist[i], x_seq[i], 1e-7) << "x[" << i << "]";
}

TEST(DistGmres, BlockJacobiPreconditioningWorks) {
  Csr a = unsymmetric_grid(10, 6, 12);
  const index_t n = a.rows();
  Vector b(static_cast<std::size_t>(n), 1.0);
  const int P = 3;
  distrib::BlockDist rows(n, P);

  GmresOptions opts;
  opts.restart = 15;
  opts.max_iterations = 600;
  opts.tolerance = 1e-10;

  Vector x_dist(static_cast<std::size_t>(n), 0.0);
  std::mutex mu;
  runtime::Machine machine(P);
  machine.run([&](runtime::Process& p) {
    spmd::DistSpmv dist =
        spmd::build_dist_spmv(p, a, rows, spmd::Variant::kBernoulliMixed);
    auto mine = rows.owned_indices(p.rank());
    Vector bl(mine.size()), xl(mine.size(), 0.0);
    for (std::size_t k = 0; k < mine.size(); ++k)
      bl[k] = b[static_cast<std::size_t>(mine[k])];
    // Block-Jacobi: per-rank diagonal of the local block.
    Vector dl = extract_diagonal(dist.a_local);
    GmresResult res = dist_gmres(
        p, dist, bl, xl, opts, [&](ConstVectorView r, VectorView z) {
          for (std::size_t i = 0; i < z.size(); ++i) z[i] = r[i] / dl[i];
        });
    EXPECT_TRUE(res.converged);
    std::lock_guard<std::mutex> lk(mu);
    for (std::size_t k = 0; k < mine.size(); ++k)
      x_dist[static_cast<std::size_t>(mine[k])] = xl[k];
  });
  Vector ax(static_cast<std::size_t>(n));
  spmv(a, x_dist, ax);
  for (std::size_t i = 0; i < ax.size(); ++i) EXPECT_NEAR(ax[i], 1.0, 1e-7);
}

}  // namespace
}  // namespace bernoulli::solvers
