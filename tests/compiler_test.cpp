// The Bernoulli compiler pipeline: query extraction, planning, plan
// interpretation, and C emission, cross-checked against dense references.
#include <gtest/gtest.h>

#include "compiler/loopnest.hpp"
#include "formats/formats.hpp"
#include "relation/array_views.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace bernoulli::compiler {
namespace {

using formats::Coo;
using formats::Csr;
using formats::Ccs;
using formats::Dense;
using formats::SparseVector;
using formats::TripletBuilder;

Coo random_matrix(index_t rows, index_t cols, index_t nnz, std::uint64_t seed) {
  SplitMix64 rng(seed);
  TripletBuilder b(rows, cols);
  for (index_t k = 0; k < nnz; ++k)
    b.add(rng.next_index(rows), rng.next_index(cols),
          rng.next_double(-1.0, 1.0));
  return std::move(b).build();
}

LoopNest matvec_nest(index_t n, index_t m) {
  return LoopNest{
      {{"i", n}, {"j", m}},
      {{"Y", {"i"}}, {{"A", {"i", "j"}}, {"X", {"j"}}}, 1.0},
  };
}

TEST(Compile, CsrMatvecMatchesDense) {
  Coo a = random_matrix(30, 24, 150, 1);
  Csr csr = Csr::from_coo(a);
  Dense d = Dense::from_coo(a);

  Vector x(24);
  SplitMix64 rng(2);
  for (auto& v : x) v = rng.next_double(-1.0, 1.0);
  Vector y(30, 0.0), y_ref(30);
  spmv(d, x, y_ref);

  Bindings b;
  b.bind_csr("A", csr);
  b.bind_dense_vector("X", ConstVectorView(x));
  b.bind_dense_vector("Y", VectorView(y));
  CompiledKernel k = compile(matvec_nest(30, 24), b);
  k.run();
  for (std::size_t i = 0; i < y.size(); ++i) ASSERT_NEAR(y[i], y_ref[i], 1e-12);
}

TEST(Compile, CsrPlanEnumeratesMatrixHierarchy) {
  Coo a = random_matrix(30, 24, 60, 3);
  Csr csr = Csr::from_coo(a);
  Vector x(24, 1.0), y(30, 0.0);
  Bindings b;
  b.bind_csr("A", csr);
  b.bind_dense_vector("X", ConstVectorView(x));
  b.bind_dense_vector("Y", VectorView(y));
  CompiledKernel k = compile(matvec_nest(30, 24), b);
  std::string desc = k.describe_plan();
  // Outer loop over i, inner over j, both driven by A's hierarchy (the
  // sparse filter), never by a dense scan of the full iteration space.
  EXPECT_EQ(k.plan().levels[0].var, "i");
  EXPECT_EQ(k.plan().levels[1].var, "j");
  EXPECT_NE(desc.find("enumerate A"), std::string::npos) << desc;
}

TEST(Compile, CcsMatvecPicksColumnMajorOrder) {
  Coo a = random_matrix(40, 40, 150, 4);
  Ccs ccs = Ccs::from_coo(a);
  Dense d = Dense::from_coo(a);

  Vector x(40);
  SplitMix64 rng(5);
  for (auto& v : x) v = rng.next_double(-1.0, 1.0);
  Vector y(40, 0.0), y_ref(40);
  spmv(d, x, y_ref);

  Bindings b;
  b.bind_ccs("A", ccs);
  b.bind_dense_vector("X", ConstVectorView(x));
  b.bind_dense_vector("Y", VectorView(y));
  CompiledKernel k = compile(matvec_nest(40, 40), b);
  // CCS can only reach rows through a column, so the chosen order must put
  // j outermost.
  EXPECT_EQ(k.plan().levels[0].var, "j");
  k.run();
  for (std::size_t i = 0; i < y.size(); ++i) ASSERT_NEAR(y[i], y_ref[i], 1e-12);
}

TEST(Compile, CooMatvecMatchesDense) {
  Coo a = random_matrix(25, 25, 90, 6);
  Dense d = Dense::from_coo(a);
  Vector x(25);
  SplitMix64 rng(7);
  for (auto& v : x) v = rng.next_double(-1.0, 1.0);
  Vector y(25, 0.0), y_ref(25);
  spmv(d, x, y_ref);

  Bindings b;
  b.bind_coo("A", a);
  b.bind_dense_vector("X", ConstVectorView(x));
  b.bind_dense_vector("Y", VectorView(y));
  compile(matvec_nest(25, 25), b).run();
  for (std::size_t i = 0; i < y.size(); ++i) ASSERT_NEAR(y[i], y_ref[i], 1e-12);
}

TEST(Compile, SparseXFiltersIterations) {
  // Paper Eq. 4: with both A and X sparse, P = NZ(A) AND NZ(X); only
  // columns stored in X contribute.
  Coo a = random_matrix(20, 20, 120, 8);
  Csr csr = Csr::from_coo(a);
  SparseVector x(20, {{3, 2.0}, {7, -1.0}, {15, 0.5}});
  Vector y(20, 0.0), y_ref(20, 0.0);

  Dense d = Dense::from_coo(a);
  Vector xd = x.to_dense();
  spmv(d, xd, y_ref);

  Bindings b;
  b.bind_csr("A", csr);
  b.bind_sparse_vector("X", x);
  b.bind_dense_vector("Y", VectorView(y));
  compile(matvec_nest(20, 20), b).run();
  for (std::size_t i = 0; i < y.size(); ++i) ASSERT_NEAR(y[i], y_ref[i], 1e-12);
}

TEST(Compile, SparseXSparseAUsesMergeJoin) {
  Coo a = random_matrix(60, 60, 600, 9);
  Csr csr = Csr::from_coo(a);
  SparseVector x(60, {{1, 1.0}, {5, 1.0}, {30, 1.0}, {59, 1.0}});
  Vector y(60, 0.0);

  Bindings b;
  b.bind_csr("A", csr);
  b.bind_sparse_vector("X", x);
  b.bind_dense_vector("Y", VectorView(y));
  CompiledKernel k = compile(matvec_nest(60, 60), b);
  // At the j level both A's column level and X are sorted filters: the
  // planner should merge-join them.
  bool has_merge = false;
  for (const auto& lv : k.plan().levels)
    if (lv.method == JoinMethod::kMerge) has_merge = true;
  EXPECT_TRUE(has_merge) << k.describe_plan();
}

TEST(Compile, ForcedOrdersAllProduceSameResult) {
  // Executor correctness is independent of the join order: any feasible
  // order must compute the same y.
  Coo a = random_matrix(15, 18, 80, 10);
  Csr csr = Csr::from_coo(a);
  Dense d = Dense::from_coo(a);
  Vector x(18);
  SplitMix64 rng(11);
  for (auto& v : x) v = rng.next_double(-1.0, 1.0);
  Vector y_ref(15);
  spmv(d, x, y_ref);

  for (auto order : {std::vector<std::string>{"i", "j"},
                     std::vector<std::string>{"j", "i"}}) {
    Vector y(15, 0.0);
    Bindings b;
    b.bind_csr("A", csr);
    b.bind_dense_vector("X", ConstVectorView(x));
    b.bind_dense_vector("Y", VectorView(y));
    PlannerOptions opts;
    opts.force_order = order;
    compile(matvec_nest(15, 18), b, opts).run();
    for (std::size_t i = 0; i < y.size(); ++i)
      ASSERT_NEAR(y[i], y_ref[i], 1e-12) << "order " << order[0] << order[1];
  }
}

TEST(Compile, MergeDisabledStillCorrect) {
  Coo a = random_matrix(30, 30, 200, 12);
  Csr csr = Csr::from_coo(a);
  SparseVector x(30, {{2, 1.5}, {9, -2.0}, {29, 4.0}});
  Vector xd = x.to_dense();
  Dense d = Dense::from_coo(a);
  Vector y_ref(30);
  spmv(d, xd, y_ref);

  for (bool allow_merge : {true, false}) {
    Vector y(30, 0.0);
    Bindings b;
    b.bind_csr("A", csr);
    b.bind_sparse_vector("X", x);
    b.bind_dense_vector("Y", VectorView(y));
    PlannerOptions opts;
    opts.allow_merge = allow_merge;
    compile(matvec_nest(30, 30), b, opts).run();
    for (std::size_t i = 0; i < y.size(); ++i)
      ASSERT_NEAR(y[i], y_ref[i], 1e-12);
  }
}

TEST(Compile, MatMatProductThreeDeep) {
  // C(i,j) += A(i,k) * B(k,j): sparse-sparse matrix product into dense C.
  Coo a = random_matrix(12, 15, 60, 13);
  Coo bm = random_matrix(15, 10, 50, 14);
  Csr acsr = Csr::from_coo(a);
  Csr bcsr = Csr::from_coo(bm);
  Dense c(12, 10);

  Bindings b;
  b.bind_csr("A", acsr);
  b.bind_csr("B", bcsr);
  b.bind_dense_matrix("C", c);
  LoopNest nest{
      {{"i", 12}, {"k", 15}, {"j", 10}},
      {{"C", {"i", "j"}}, {{"A", {"i", "k"}}, {"B", {"k", "j"}}}, 1.0},
  };
  compile(nest, b).run();

  Dense ad = Dense::from_coo(a), bd = Dense::from_coo(bm);
  for (index_t i = 0; i < 12; ++i)
    for (index_t j = 0; j < 10; ++j) {
      value_t ref = 0;
      for (index_t k = 0; k < 15; ++k) ref += ad.at(i, k) * bd.at(k, j);
      ASSERT_NEAR(c.at(i, j), ref, 1e-12) << i << "," << j;
    }
}

TEST(Compile, ScaledAccumulation) {
  // Y(i) += 2.5 * A(i,j) * X(j), accumulating on top of existing y.
  Coo a = random_matrix(10, 10, 30, 15);
  Csr csr = Csr::from_coo(a);
  Vector x(10, 1.0), y(10, 1.0);
  Dense d = Dense::from_coo(a);
  Vector ax(10);
  spmv(d, x, ax);

  Bindings b;
  b.bind_csr("A", csr);
  b.bind_dense_vector("X", ConstVectorView(x));
  b.bind_dense_vector("Y", VectorView(y));
  LoopNest nest{{{"i", 10}, {"j", 10}},
                {{"Y", {"i"}}, {{"A", {"i", "j"}}, {"X", {"j"}}}, 2.5}};
  compile(nest, b).run();
  for (std::size_t i = 0; i < 10; ++i)
    ASSERT_NEAR(y[i], 1.0 + 2.5 * ax[i], 1e-12);
}

TEST(Compile, EmitsCsrLoopNest) {
  Coo a = random_matrix(10, 10, 30, 16);
  Csr csr = Csr::from_coo(a);
  Vector x(10, 1.0), y(10, 0.0);
  Bindings b;
  b.bind_csr("A", csr);
  b.bind_dense_vector("X", ConstVectorView(x));
  b.bind_dense_vector("Y", VectorView(y));
  CompiledKernel k = compile(matvec_nest(10, 10), b);
  std::string code = k.emit("spmv_csr");
  EXPECT_NE(code.find("void spmv_csr(void)"), std::string::npos) << code;
  EXPECT_NE(code.find("A_ROWPTR"), std::string::npos) << code;
  EXPECT_NE(code.find("A_COLIND"), std::string::npos) << code;
  EXPECT_NE(code.find("Y["), std::string::npos) << code;
  EXPECT_NE(code.find("+="), std::string::npos) << code;
}

TEST(Compile, EmitsMergeJoinAsTwoFingerLoop) {
  Coo a = random_matrix(10, 10, 40, 17);
  Csr csr = Csr::from_coo(a);
  SparseVector x(10, {{1, 1.0}, {4, 2.0}});
  Vector y(10, 0.0);
  Bindings b;
  b.bind_csr("A", csr);
  b.bind_sparse_vector("X", x);
  b.bind_dense_vector("Y", VectorView(y));
  PlannerOptions opts;
  opts.force_order = std::vector<std::string>{"i", "j"};
  CompiledKernel k = compile(matvec_nest(10, 10), b, opts);
  std::string code = k.emit();
  EXPECT_NE(code.find("merge join"), std::string::npos) << code;
  EXPECT_NE(code.find("while ("), std::string::npos) << code;
}

TEST(Compile, RejectsUnboundArray) {
  Bindings b;
  Vector y(5, 0.0);
  b.bind_dense_vector("Y", VectorView(y));
  EXPECT_THROW(compile(matvec_nest(5, 5), b), Error);
}

TEST(Compile, RejectsReadOnlyTarget) {
  Coo a = random_matrix(5, 5, 10, 18);
  Csr csr = Csr::from_coo(a);
  Vector x(5, 1.0);
  Vector y(5, 0.0);
  Bindings b;
  b.bind_csr("A", csr);
  b.bind_dense_vector("X", ConstVectorView(x));
  b.bind_dense_vector("Y", ConstVectorView(y));  // read-only target
  EXPECT_THROW(compile(matvec_nest(5, 5), b), Error);
}

TEST(Compile, PermutedRowsQuery) {
  // Paper §2.2 / Eq. 6: rows of A are permuted by P. We pose the query
  // directly: Y(i) += A(ip, j) * X(j) with P(i, ip).
  const index_t n = 8;
  Coo a = random_matrix(n, n, 30, 19);
  Csr csr = Csr::from_coo(a);
  std::vector<index_t> perm = {3, 1, 4, 0, 2, 7, 5, 6};

  Vector x(static_cast<std::size_t>(n));
  SplitMix64 rng(20);
  for (auto& v : x) v = rng.next_double(-1.0, 1.0);
  Vector y(static_cast<std::size_t>(n), 0.0);

  relation::IntervalView iview("I", {n, n});
  relation::PermutationView pview("P", perm);
  relation::CsrView aview("A", csr);
  relation::DenseVectorView xview("X", ConstVectorView(x));
  relation::DenseVectorView yview("Y", VectorView(y));

  relation::Query q;
  q.vars = {"i", "ip", "j"};
  q.relations.push_back({&iview, {"i", "j"}, true, false, true});
  q.relations.push_back({&pview, {"i", "ip"}, true, false, false});
  q.relations.push_back({&aview, {"ip", "j"}, true, false, false});
  q.relations.push_back({&xview, {"j"}, false, false, false});
  q.relations.push_back({&yview, {"i"}, false, true, false});

  Plan plan = plan_query(q);
  execute(plan, q, multiply_accumulate(q, 4, {2, 3}));

  // Reference: y[i] = sum_j A[perm[i]][j] * x[j].
  Dense d = Dense::from_coo(a);
  for (index_t i = 0; i < n; ++i) {
    value_t ref = 0;
    for (index_t j = 0; j < n; ++j)
      ref += d.at(perm[static_cast<std::size_t>(i)], j) *
             x[static_cast<std::size_t>(j)];
    ASSERT_NEAR(y[static_cast<std::size_t>(i)], ref, 1e-12) << "i=" << i;
  }
}

}  // namespace
}  // namespace bernoulli::compiler
