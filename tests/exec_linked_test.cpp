// Differential test: the linked cursor engine (compiler/link.hpp +
// exec_linked.cpp) against the reference interpreter
// (execute_interpreted), across every format and plan shape the compiler
// sweep covers plus the merge-join, fill-in (sparse output insert),
// filtering-rejection and permutation paths. The contract is strict:
// bitwise-identical outputs, identical executor.* counter deltas and
// identical per-level enumerated/produced totals.
#include <gtest/gtest.h>

#include <map>

#include "blas/spgemm.hpp"
#include "compiler/explain.hpp"
#include "compiler/link.hpp"
#include "compiler/loopnest.hpp"
#include "compiler/specialize.hpp"
#include "formats/formats.hpp"
#include "relation/array_views.hpp"
#include "relation/hash_index.hpp"
#include "relation/jds_view.hpp"
#include "relation/spa_view.hpp"
#include "relation/sparse_vector_view.hpp"
#include "support/counters.hpp"
#include "support/histogram.hpp"
#include "support/profile.hpp"
#include "support/rng.hpp"

namespace bernoulli::compiler {
namespace {

using formats::Coo;
using formats::TripletBuilder;
using relation::Query;

Coo random_matrix(index_t rows, index_t cols, index_t nnz,
                  std::uint64_t seed) {
  SplitMix64 rng(seed);
  TripletBuilder b(rows, cols);
  for (index_t k = 0; k < nnz; ++k)
    b.add(rng.next_index(rows), rng.next_index(cols),
          rng.next_double(-1.0, 1.0));
  return std::move(b).build();
}

// executor.* counter deltas across a run (zero deltas elided, so the
// comparison is independent of which counters other tests registered).
std::map<std::string, long long> exec_delta(
    const support::CountersSnapshot& before,
    const support::CountersSnapshot& after) {
  std::map<std::string, long long> d;
  for (const auto& [name, v] : after.counts) {
    if (name.rfind("executor.", 0) != 0) continue;
    long long b = 0;
    if (auto it = before.counts.find(name); it != before.counts.end())
      b = it->second;
    if (v != b) d[name] = v - b;
  }
  return d;
}

struct EngineRun {
  std::map<std::string, long long> deltas;
  RunStats stats;
};

EngineRun run_interpreted(const Plan& plan, const Query& q,
                          const Action& action) {
  EngineRun r;
  auto before = support::counters_snapshot();
  execute_interpreted(plan, q, action, &r.stats);
  r.deltas = exec_delta(before, support::counters_snapshot());
  return r;
}

EngineRun run_linked(const Plan& plan, const Query& q, const Action& action) {
  EngineRun r;
  auto before = support::counters_snapshot();
  LinkedRunner runner(link_plan(plan, q));
  runner.run(action, &r.stats);
  r.deltas = exec_delta(before, support::counters_snapshot());
  return r;
}

EngineRun run_linked_mac(const Plan& plan, const Query& q, index_t target,
                         const std::vector<index_t>& factors,
                         value_t scale = 1.0) {
  EngineRun r;
  auto before = support::counters_snapshot();
  LinkedRunner runner(link_plan(plan, q));
  runner.run(link_mac(q, target, factors, scale), &r.stats);
  r.deltas = exec_delta(before, support::counters_snapshot());
  return r;
}

void expect_same_work(const EngineRun& interp, const EngineRun& linked) {
  EXPECT_EQ(interp.deltas, linked.deltas);
  EXPECT_EQ(interp.stats.tuples, linked.stats.tuples);
  ASSERT_EQ(interp.stats.levels.size(), linked.stats.levels.size());
  for (std::size_t d = 0; d < interp.stats.levels.size(); ++d) {
    EXPECT_EQ(interp.stats.levels[d].enumerated,
              linked.stats.levels[d].enumerated)
        << "level " << d;
    EXPECT_EQ(interp.stats.levels[d].produced, linked.stats.levels[d].produced)
        << "level " << d;
  }
}

// ---- Format sweep: every storage binding of the sweep test ----------

enum class Storage {
  kCsr,
  kCcs,
  kCoo,
  kEll,
  kBsr,
  kSell,
  kDenseMatrix,
  kCsrHashed
};

std::string storage_name(Storage s) {
  switch (s) {
    case Storage::kCsr: return "csr";
    case Storage::kCcs: return "ccs";
    case Storage::kCoo: return "coo";
    case Storage::kEll: return "ell";
    case Storage::kBsr: return "bsr";
    case Storage::kSell: return "sell";
    case Storage::kDenseMatrix: return "dense";
    case Storage::kCsrHashed: return "csr_hashed";
  }
  return "?";
}

// Largest square block size from {4, 2} tiling both dimensions; BCSR
// test shapes that divide neither fall back to 1x1 blocks.
index_t block_for(index_t rows, index_t cols) {
  for (index_t r : {4, 2})
    if (rows % r == 0 && cols % r == 0) return r;
  return 1;
}

struct Case {
  Storage storage;
  index_t rows;
  index_t cols;
  index_t nnz;
  std::uint64_t seed;
};

class LinkedSweep : public ::testing::TestWithParam<Case> {};

TEST_P(LinkedSweep, MatchesInterpreterExactly) {
  const Case& c = GetParam();
  SplitMix64 rng(c.seed);
  Coo coo = random_matrix(c.rows, c.cols, c.nnz, c.seed);

  Vector x(static_cast<std::size_t>(c.cols));
  for (auto& v : x) v = rng.next_double(-1, 1);
  Vector y(static_cast<std::size_t>(c.rows), 0.0);

  formats::Csr csr = formats::Csr::from_coo(coo);
  formats::Ccs ccs = formats::Ccs::from_coo(coo);
  formats::Ell ell = formats::Ell::from_coo(coo);
  formats::Bsr bsr = formats::Bsr::from_coo(coo, block_for(c.rows, c.cols));
  formats::Sell sell = formats::Sell::from_coo(coo, 4, 8);
  formats::Dense dm = formats::Dense::from_coo(coo);
  relation::CsrView csr_base("A", csr);
  relation::HashIndexedView hashed(csr_base, 1);

  Bindings b;
  switch (c.storage) {
    case Storage::kCsr: b.bind_csr("A", csr); break;
    case Storage::kCcs: b.bind_ccs("A", ccs); break;
    case Storage::kCoo: b.bind_coo("A", coo); break;
    case Storage::kEll: b.bind_ell("A", ell); break;
    case Storage::kBsr: b.bind_bsr("A", bsr); break;
    case Storage::kSell: b.bind_sell("A", sell); break;
    case Storage::kDenseMatrix: b.bind_dense_matrix("A", dm); break;
    case Storage::kCsrHashed:
      b.bind_view("A", &hashed, {0, 1}, /*sparse=*/true);
      break;
  }
  b.bind_dense_vector("X", ConstVectorView(x));
  b.bind_dense_vector("Y", VectorView(y));

  LoopNest nest{{{"i", c.rows}, {"j", c.cols}},
                {{"Y", {"i"}}, {{"A", {"i", "j"}}, {"X", {"j"}}}, 1.0}};
  CompiledKernel k = compile(nest, b);
  // compile() lays relations out as I=0, target=1, factors in order.
  const index_t target = 1;
  const std::vector<index_t> factors{2, 3};

  EngineRun ir =
      run_interpreted(k.plan(), k.query(),
                      multiply_accumulate(k.query(), target, factors));
  Vector y_interp = y;

  std::fill(y.begin(), y.end(), 0.0);
  EngineRun lr = run_linked_mac(k.plan(), k.query(), target, factors);
  expect_same_work(ir, lr);
  for (std::size_t i = 0; i < y.size(); ++i)
    EXPECT_EQ(y[i], y_interp[i]) << "row " << i;  // bitwise

  // The Action-sink path of the linked engine must agree as well.
  std::fill(y.begin(), y.end(), 0.0);
  EngineRun la = run_linked(k.plan(), k.query(),
                            multiply_accumulate(k.query(), target, factors));
  expect_same_work(ir, la);
  for (std::size_t i = 0; i < y.size(); ++i) EXPECT_EQ(y[i], y_interp[i]);
}

std::vector<Case> make_cases() {
  std::vector<Case> cases;
  std::uint64_t seed = 900;
  for (Storage s : {Storage::kCsr, Storage::kCcs, Storage::kCoo,
                    Storage::kEll, Storage::kBsr, Storage::kSell,
                    Storage::kDenseMatrix, Storage::kCsrHashed}) {
    cases.push_back({s, 1, 1, 1, seed++});
    cases.push_back({s, 10, 14, 40, seed++});
    cases.push_back({s, 14, 10, 40, seed++});
    cases.push_back({s, 32, 32, 64, seed++});   // sparse, empty rows
    cases.push_back({s, 24, 24, 400, seed++});  // dense-ish, duplicates
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllStorages, LinkedSweep,
                         ::testing::ValuesIn(make_cases()),
                         [](const ::testing::TestParamInfo<Case>& info) {
                           const Case& c = info.param;
                           std::ostringstream os;
                           os << storage_name(c.storage) << "_" << c.rows
                              << "x" << c.cols << "_nnz" << c.nnz;
                           return os.str();
                         });

// ---- Merge join (sparse A |><| sparse X), both planner modes --------

TEST(LinkedExec, MergeJoinAndProbeFallbackMatch) {
  Coo a = random_matrix(60, 60, 500, 21);
  formats::Csr csr = formats::Csr::from_coo(a);
  formats::SparseVector x(
      60, {{1, 1.0}, {5, -2.0}, {12, 0.25}, {30, 3.0}, {59, -1.0}});
  Vector y(60, 0.0);

  for (bool allow_merge : {true, false}) {
    Bindings b;
    b.bind_csr("A", csr);
    b.bind_sparse_vector("X", x);
    b.bind_dense_vector("Y", VectorView(y));
    LoopNest nest{{{"i", 60}, {"j", 60}},
                  {{"Y", {"i"}}, {{"A", {"i", "j"}}, {"X", {"j"}}}, 1.0}};
    PlannerOptions opts;
    opts.allow_merge = allow_merge;
    CompiledKernel k = compile(nest, b, opts);

    std::fill(y.begin(), y.end(), 0.0);
    EngineRun ir = run_interpreted(
        k.plan(), k.query(), multiply_accumulate(k.query(), 1, {2, 3}));
    Vector y_interp = y;

    std::fill(y.begin(), y.end(), 0.0);
    EngineRun lr = run_linked_mac(k.plan(), k.query(), 1, {2, 3});
    expect_same_work(ir, lr);
    if (allow_merge) {
      EXPECT_GT(lr.deltas["executor.merge_steps"], 0);
      EXPECT_GT(lr.deltas["executor.merge_segment_bytes"], 0);
    } else {
      // Index-nested-loop mode: X is probed and rejects most columns.
      EXPECT_GT(lr.deltas["executor.probe_misses"], 0);
    }
    for (std::size_t i = 0; i < y.size(); ++i) EXPECT_EQ(y[i], y_interp[i]);
  }
}

// ---- Sparse-output fill-in: SpGEMM into a SPA -----------------------

TEST(LinkedExec, SpgemmFillInMatches) {
  Coo a = random_matrix(14, 18, 60, 22);
  Coo bm = random_matrix(18, 11, 55, 23);
  formats::Csr acsr = formats::Csr::from_coo(a);
  formats::Csr bcsr = formats::Csr::from_coo(bm);
  relation::CsrView aview("A", acsr);
  relation::CsrView bview("B", bcsr);
  relation::IntervalView iview("I", {14, 18, 11});

  auto make_query = [&](relation::SpaView& c) {
    Query q;
    q.vars = {"i", "k", "j"};
    q.relations.push_back({&iview, {"i", "k", "j"}, true, false, true});
    q.relations.push_back({&aview, {"i", "k"}, true, false, false});
    q.relations.push_back({&bview, {"k", "j"}, true, false, false});
    q.relations.push_back({&c, {"i", "j"}, false, true, false});
    return q;
  };

  // Fresh SPA per engine so every insert happens in both runs.
  relation::SpaView c_interp("C", 14, 11);
  Query q_interp = make_query(c_interp);
  Plan plan = plan_query(q_interp);
  EngineRun ir = run_interpreted(plan, q_interp,
                                 multiply_accumulate(q_interp, 3, {1, 2}));

  relation::SpaView c_linked("C", 14, 11);
  Query q_linked = make_query(c_linked);
  EngineRun lr = run_linked_mac(plan, q_linked, 3, {1, 2});

  expect_same_work(ir, lr);
  EXPECT_GT(lr.deltas["executor.fill_ins"], 0);
  EXPECT_EQ(c_interp.harvest(), c_linked.harvest());  // structure + values
  EXPECT_EQ(c_linked.harvest(), blas::spgemm(acsr, bcsr).to_coo());
}

// ---- Permutation relation (JDS, paper Eq. 6) ------------------------

TEST(LinkedExec, JdsPermutationMatvecMatches) {
  const index_t n = 20;
  Coo coo = random_matrix(n, n, 90, 24);
  formats::Jds jds = formats::Jds::from_coo(coo);

  SplitMix64 rng(25);
  Vector x(static_cast<std::size_t>(n));
  for (auto& v : x) v = rng.next_double(-1, 1);
  Vector y(static_cast<std::size_t>(n), 0.0);

  relation::JdsView aview("Ap", jds);
  relation::PermutationView pview("P", aview.original_to_permuted());
  relation::IntervalView iview("I", {n, n});
  relation::DenseVectorView xview("X", ConstVectorView(x));
  relation::DenseVectorView yview("Y", VectorView(y));

  Query q;
  q.vars = {"i", "ip", "j"};
  q.relations.push_back({&iview, {"i", "j"}, true, false, true});
  q.relations.push_back({&pview, {"i", "ip"}, true, false, false});
  q.relations.push_back({&aview, {"ip", "j"}, true, false, false});
  q.relations.push_back({&xview, {"j"}, false, false, false});
  q.relations.push_back({&yview, {"i"}, false, true, false});
  Plan plan = plan_query(q);

  EngineRun ir =
      run_interpreted(plan, q, multiply_accumulate(q, 4, {2, 3}));
  Vector y_interp = y;

  std::fill(y.begin(), y.end(), 0.0);
  EngineRun lr = run_linked_mac(plan, q, 4, {2, 3});
  expect_same_work(ir, lr);
  for (std::size_t i = 0; i < y.size(); ++i) EXPECT_EQ(y[i], y_interp[i]);
}

// ---- Runner reuse: repeated runs of one LinkedRunner ----------------

TEST(LinkedExec, RunnerReuseKeepsCountsStable) {
  Coo a = random_matrix(32, 32, 128, 26);
  formats::Csr csr = formats::Csr::from_coo(a);
  Vector x(32, 1.0), y(32, 0.0);

  Bindings b;
  b.bind_csr("A", csr);
  b.bind_dense_vector("X", ConstVectorView(x));
  b.bind_dense_vector("Y", VectorView(y));
  LoopNest nest{{{"i", 32}, {"j", 32}},
                {{"Y", {"i"}}, {{"A", {"i", "j"}}, {"X", {"j"}}}, 1.0}};
  CompiledKernel k = compile(nest, b);

  LinkedRunner runner(link_plan(k.plan(), k.query()));
  LinkedMac mac = link_mac(k.query(), 1, {2, 3});
  EngineRun first;
  {
    auto before = support::counters_snapshot();
    runner.run(mac, &first.stats);
    first.deltas = exec_delta(before, support::counters_snapshot());
  }
  Vector y_first = y;
  for (int rep = 0; rep < 3; ++rep) {
    std::fill(y.begin(), y.end(), 0.0);
    EngineRun again;
    auto before = support::counters_snapshot();
    runner.run(mac, &again.stats);
    again.deltas = exec_delta(before, support::counters_snapshot());
    expect_same_work(first, again);
    for (std::size_t i = 0; i < y.size(); ++i) EXPECT_EQ(y[i], y_first[i]);
  }
}

// ---- Parallel execution: ParallelRunner vs the interpreter ----------

// executor.fanout.* histogram bucket deltas across a run (all-zero
// histograms elided, mirroring exec_delta).
std::map<std::string, std::vector<long long>> fanout_delta(
    const std::map<std::string, std::vector<long long>>& before,
    const std::map<std::string, std::vector<long long>>& after) {
  std::map<std::string, std::vector<long long>> d;
  for (const auto& [name, buckets] : after) {
    if (name.rfind("executor.fanout.", 0) != 0) continue;
    std::vector<long long> delta = buckets;
    if (auto it = before.find(name); it != before.end())
      for (std::size_t i = 0; i < delta.size() && i < it->second.size(); ++i)
        delta[i] -= it->second[i];
    bool any = false;
    for (long long v : delta) any = any || v != 0;
    if (any) d[name] = std::move(delta);
  }
  return d;
}

class ParallelSweep : public ::testing::TestWithParam<Case> {};

// The contract extends to threads: for every storage and every thread
// count, ParallelRunner must reproduce the interpreter bitwise — outputs,
// merged executor.* counter deltas, merged fan-out histogram deltas and
// per-level stats. Plans the legality check rejects (e.g. CCS's
// column-outer order writing row-indexed Y) exercise the serial fallback
// through the very same assertions.
TEST_P(ParallelSweep, MatchesInterpreterForAllThreadCounts) {
  const Case& c = GetParam();
  SplitMix64 rng(c.seed);
  Coo coo = random_matrix(c.rows, c.cols, c.nnz, c.seed);

  Vector x(static_cast<std::size_t>(c.cols));
  for (auto& v : x) v = rng.next_double(-1, 1);
  Vector y(static_cast<std::size_t>(c.rows), 0.0);

  formats::Csr csr = formats::Csr::from_coo(coo);
  formats::Ccs ccs = formats::Ccs::from_coo(coo);
  formats::Ell ell = formats::Ell::from_coo(coo);
  formats::Bsr bsr = formats::Bsr::from_coo(coo, block_for(c.rows, c.cols));
  formats::Sell sell = formats::Sell::from_coo(coo, 4, 8);
  formats::Dense dm = formats::Dense::from_coo(coo);
  relation::CsrView csr_base("A", csr);
  relation::HashIndexedView hashed(csr_base, 1);

  Bindings b;
  switch (c.storage) {
    case Storage::kCsr: b.bind_csr("A", csr); break;
    case Storage::kCcs: b.bind_ccs("A", ccs); break;
    case Storage::kCoo: b.bind_coo("A", coo); break;
    case Storage::kEll: b.bind_ell("A", ell); break;
    case Storage::kBsr: b.bind_bsr("A", bsr); break;
    case Storage::kSell: b.bind_sell("A", sell); break;
    case Storage::kDenseMatrix: b.bind_dense_matrix("A", dm); break;
    case Storage::kCsrHashed:
      b.bind_view("A", &hashed, {0, 1}, /*sparse=*/true);
      break;
  }
  b.bind_dense_vector("X", ConstVectorView(x));
  b.bind_dense_vector("Y", VectorView(y));

  LoopNest nest{{{"i", c.rows}, {"j", c.cols}},
                {{"Y", {"i"}}, {{"A", {"i", "j"}}, {"X", {"j"}}}, 1.0}};
  CompiledKernel k = compile(nest, b);
  const index_t target = 1;
  const std::vector<index_t> factors{2, 3};

  auto hist_before = support::histograms_snapshot();
  EngineRun ir =
      run_interpreted(k.plan(), k.query(),
                      multiply_accumulate(k.query(), target, factors));
  auto ir_fanout = fanout_delta(hist_before, support::histograms_snapshot());
  Vector y_interp = y;

  for (int threads : {1, 2, 4, 8}) {
    std::fill(y.begin(), y.end(), 0.0);
    auto hb = support::histograms_snapshot();
    auto before = support::counters_snapshot();
    ParallelRunner runner(link_plan(k.plan(), k.query()), threads);
    EngineRun pr;
    runner.run(link_mac(k.query(), target, factors), &pr.stats);
    pr.deltas = exec_delta(before, support::counters_snapshot());
    expect_same_work(ir, pr);
    EXPECT_EQ(ir_fanout,
              fanout_delta(hb, support::histograms_snapshot()))
        << "threads=" << threads;
    for (std::size_t i = 0; i < y.size(); ++i)
      EXPECT_EQ(y[i], y_interp[i]) << "threads=" << threads << " row " << i;
  }

  // The Action-sink path fans out too (distinct outer bindings only, so a
  // concurrently-invoked accumulate into disjoint rows is safe).
  std::fill(y.begin(), y.end(), 0.0);
  auto before = support::counters_snapshot();
  ParallelRunner runner(link_plan(k.plan(), k.query()), 4);
  EngineRun pa;
  runner.run(multiply_accumulate(k.query(), target, factors), &pa.stats);
  pa.deltas = exec_delta(before, support::counters_snapshot());
  expect_same_work(ir, pa);
  for (std::size_t i = 0; i < y.size(); ++i) EXPECT_EQ(y[i], y_interp[i]);
}

INSTANTIATE_TEST_SUITE_P(AllStorages, ParallelSweep,
                         ::testing::ValuesIn(make_cases()),
                         [](const ::testing::TestParamInfo<Case>& info) {
                           const Case& c = info.param;
                           std::ostringstream os;
                           os << storage_name(c.storage) << "_" << c.rows
                              << "x" << c.cols << "_nnz" << c.nnz;
                           return os.str();
                         });

// ---- Bulk leaf-range drains: fused loop vs per-tuple callbacks ------

// The bulk path (set_bulk_drain(true), the default) streams a contiguous
// leaf range into the accumulate as one fused loop. The contract is the
// same as everywhere else in this file: against the per-tuple path it
// must be bitwise-identical in outputs AND indistinguishable in every
// observable — executor.* counter deltas, fan-out histogram deltas and
// per-level enumerated/produced totals, because the bulk booking settles
// probe hits from the enumerated index range instead of per element.
class BulkDrainSweep : public ::testing::TestWithParam<Case> {};

TEST_P(BulkDrainSweep, BulkPathIndistinguishableFromPerTuple) {
  const Case& c = GetParam();
  SplitMix64 rng(c.seed);
  Coo coo = random_matrix(c.rows, c.cols, c.nnz, c.seed);

  Vector x(static_cast<std::size_t>(c.cols));
  for (auto& v : x) v = rng.next_double(-1, 1);
  Vector y(static_cast<std::size_t>(c.rows), 0.0);

  formats::Csr csr = formats::Csr::from_coo(coo);
  formats::Ccs ccs = formats::Ccs::from_coo(coo);
  formats::Ell ell = formats::Ell::from_coo(coo);
  formats::Bsr bsr = formats::Bsr::from_coo(coo, block_for(c.rows, c.cols));
  formats::Sell sell = formats::Sell::from_coo(coo, 4, 8);
  formats::Dense dm = formats::Dense::from_coo(coo);
  relation::CsrView csr_base("A", csr);
  relation::HashIndexedView hashed(csr_base, 1);

  Bindings b;
  switch (c.storage) {
    case Storage::kCsr: b.bind_csr("A", csr); break;
    case Storage::kCcs: b.bind_ccs("A", ccs); break;
    case Storage::kCoo: b.bind_coo("A", coo); break;
    case Storage::kEll: b.bind_ell("A", ell); break;
    case Storage::kBsr: b.bind_bsr("A", bsr); break;
    case Storage::kSell: b.bind_sell("A", sell); break;
    case Storage::kDenseMatrix: b.bind_dense_matrix("A", dm); break;
    case Storage::kCsrHashed:
      b.bind_view("A", &hashed, {0, 1}, /*sparse=*/true);
      break;
  }
  b.bind_dense_vector("X", ConstVectorView(x));
  b.bind_dense_vector("Y", VectorView(y));

  LoopNest nest{{{"i", c.rows}, {"j", c.cols}},
                {{"Y", {"i"}}, {{"A", {"i", "j"}}, {"X", {"j"}}}, 1.0}};
  CompiledKernel k = compile(nest, b);
  const index_t target = 1;
  const std::vector<index_t> factors{2, 3};

  // Reference: per-tuple callbacks, bulk drains disabled.
  set_bulk_drain(false);
  auto hb_slow = support::histograms_snapshot();
  EngineRun slow = run_linked_mac(k.plan(), k.query(), target, factors);
  auto slow_fanout =
      fanout_delta(hb_slow, support::histograms_snapshot());
  Vector y_slow = y;

  // Bulk drains back on (the process default) before any assertion can
  // bail out of the test body.
  set_bulk_drain(true);
  std::fill(y.begin(), y.end(), 0.0);
  auto hb_fast = support::histograms_snapshot();
  EngineRun fast = run_linked_mac(k.plan(), k.query(), target, factors);
  expect_same_work(slow, fast);
  EXPECT_EQ(slow_fanout,
            fanout_delta(hb_fast, support::histograms_snapshot()));
  for (std::size_t i = 0; i < y.size(); ++i)
    EXPECT_EQ(y[i], y_slow[i]) << "row " << i;  // bitwise
}

INSTANTIATE_TEST_SUITE_P(AllStorages, BulkDrainSweep,
                         ::testing::ValuesIn(make_cases()),
                         [](const ::testing::TestParamInfo<Case>& info) {
                           const Case& c = info.param;
                           std::ostringstream os;
                           os << storage_name(c.storage) << "_" << c.rows
                              << "x" << c.cols << "_nnz" << c.nnz;
                           return os.str();
                         });

// ---- Profiling is a pure observer -----------------------------------

// Turning the per-level profiler on (support/profile.hpp) must not
// perturb a single observable of the linked engine: outputs stay
// bitwise-identical and executor.* counter deltas, fan-out histogram
// deltas and per-level enumerated/produced totals are unchanged — the
// profiler writes only to its own scratch, never to the run's state.
class ProfilingSweep : public ::testing::TestWithParam<Case> {};

TEST_P(ProfilingSweep, ProfiledRunIndistinguishableFromUnprofiled) {
  const Case& c = GetParam();
  SplitMix64 rng(c.seed);
  Coo coo = random_matrix(c.rows, c.cols, c.nnz, c.seed);

  Vector x(static_cast<std::size_t>(c.cols));
  for (auto& v : x) v = rng.next_double(-1, 1);
  Vector y(static_cast<std::size_t>(c.rows), 0.0);

  formats::Csr csr = formats::Csr::from_coo(coo);
  formats::Ccs ccs = formats::Ccs::from_coo(coo);
  formats::Ell ell = formats::Ell::from_coo(coo);
  formats::Bsr bsr = formats::Bsr::from_coo(coo, block_for(c.rows, c.cols));
  formats::Sell sell = formats::Sell::from_coo(coo, 4, 8);
  formats::Dense dm = formats::Dense::from_coo(coo);
  relation::CsrView csr_base("A", csr);
  relation::HashIndexedView hashed(csr_base, 1);

  Bindings b;
  switch (c.storage) {
    case Storage::kCsr: b.bind_csr("A", csr); break;
    case Storage::kCcs: b.bind_ccs("A", ccs); break;
    case Storage::kCoo: b.bind_coo("A", coo); break;
    case Storage::kEll: b.bind_ell("A", ell); break;
    case Storage::kBsr: b.bind_bsr("A", bsr); break;
    case Storage::kSell: b.bind_sell("A", sell); break;
    case Storage::kDenseMatrix: b.bind_dense_matrix("A", dm); break;
    case Storage::kCsrHashed:
      b.bind_view("A", &hashed, {0, 1}, /*sparse=*/true);
      break;
  }
  b.bind_dense_vector("X", ConstVectorView(x));
  b.bind_dense_vector("Y", VectorView(y));

  LoopNest nest{{{"i", c.rows}, {"j", c.cols}},
                {{"Y", {"i"}}, {{"A", {"i", "j"}}, {"X", {"j"}}}, 1.0}};
  CompiledKernel k = compile(nest, b);
  const index_t target = 1;
  const std::vector<index_t> factors{2, 3};

  // Reference: profiling off (the process default).
  auto hb_plain = support::histograms_snapshot();
  EngineRun plain = run_linked_mac(k.plan(), k.query(), target, factors);
  auto plain_fanout =
      fanout_delta(hb_plain, support::histograms_snapshot());
  Vector y_plain = y;

  // Profiling on — restored before any assertion can bail out of the
  // test body.
  support::set_profiling(true);
  std::fill(y.begin(), y.end(), 0.0);
  auto hb_prof = support::histograms_snapshot();
  EngineRun prof = run_linked_mac(k.plan(), k.query(), target, factors);
  support::set_profiling(false);
  support::profile_reset();

  expect_same_work(plain, prof);
  EXPECT_EQ(plain_fanout,
            fanout_delta(hb_prof, support::histograms_snapshot()));
  for (std::size_t i = 0; i < y.size(); ++i)
    EXPECT_EQ(y[i], y_plain[i]) << "row " << i;  // bitwise
}

INSTANTIATE_TEST_SUITE_P(AllStorages, ProfilingSweep,
                         ::testing::ValuesIn(make_cases()),
                         [](const ::testing::TestParamInfo<Case>& info) {
                           const Case& c = info.param;
                           std::ostringstream os;
                           os << storage_name(c.storage) << "_" << c.rows
                              << "x" << c.cols << "_nnz" << c.nnz;
                           return os.str();
                         });

// ---- BCSR and SELL-C-sigma vs the CRS reference, every rung ---------

// The acceptance contract for the blocked/sliced level kinds: the same
// matvec through BCSR or SELL storage must reproduce the CRS reference
// bitwise at every rung of the engine ladder — interpreted, linked
// (bulk drains on, the default), linked + threads, and specialized
// (dlopen) whenever a toolchain is available. Beyond bitwise outputs
// the SELL case also pins the observables to CRS's: SELL enumerates
// exactly nnz entries on ANY matrix (padding lanes sit beyond every
// row's ROWLEN and are never enumerated), so its executor.* counter
// deltas, fan-out histogram deltas and per-level stats are equal to the
// CRS run's, not merely internally consistent. BCSR is bitwise-equal to
// CRS only when no block-fill zeros exist (ascending block columns then
// enumerate the very same (j, value) sequence), so its matrix here is
// block-dense by construction.

struct RungRef {
  Vector y;                                             // bitwise reference
  EngineRun linked;                                     // serial linked run
  std::map<std::string, std::vector<long long>> fanout; // its fan-out delta
};

// Compiles the canonical i,j matvec over `b` and drives it through all
// four rungs, asserting every rung reproduces `y_ref` bitwise (when
// y_ref is null the serial linked run defines the reference). Returns
// the serial linked observables for cross-format comparison.
RungRef drive_all_rungs(Bindings& b, index_t rows, index_t cols, Vector& y,
                        const Vector* y_ref, const std::string& label) {
  LoopNest nest{{{"i", rows}, {"j", cols}},
                {{"Y", {"i"}}, {{"A", {"i", "j"}}, {"X", {"j"}}}, 1.0}};
  CompiledKernel k = compile(nest, b);
  const index_t target = 1;
  const std::vector<index_t> factors{2, 3};

  // Serial linked rung (bulk drains on) — the rung whose observables we
  // hand back, and the in-test reference when none was supplied.
  std::fill(y.begin(), y.end(), 0.0);
  auto hb = support::histograms_snapshot();
  RungRef ref;
  ref.linked = run_linked_mac(k.plan(), k.query(), target, factors);
  ref.fanout = fanout_delta(hb, support::histograms_snapshot());
  ref.y = y;
  const Vector& want = y_ref ? *y_ref : ref.y;
  for (std::size_t i = 0; i < y.size(); ++i)
    EXPECT_EQ(y[i], want[i]) << label << " linked row " << i;

  // Interpreted rung: bitwise outputs and identical work accounting.
  std::fill(y.begin(), y.end(), 0.0);
  EngineRun ir =
      run_interpreted(k.plan(), k.query(),
                      multiply_accumulate(k.query(), target, factors));
  expect_same_work(ir, ref.linked);
  for (std::size_t i = 0; i < y.size(); ++i)
    EXPECT_EQ(y[i], want[i]) << label << " interpreted row " << i;

  // Threaded rung (exercises the block-aligned chunk grid for BCSR).
  for (int threads : {2, 4}) {
    std::fill(y.begin(), y.end(), 0.0);
    auto hb_t = support::histograms_snapshot();
    auto cb_t = support::counters_snapshot();
    ParallelRunner runner(link_plan(k.plan(), k.query()), threads);
    EngineRun pr;
    runner.run(link_mac(k.query(), target, factors), &pr.stats);
    pr.deltas = exec_delta(cb_t, support::counters_snapshot());
    expect_same_work(ref.linked, pr);
    EXPECT_EQ(ref.fanout, fanout_delta(hb_t, support::histograms_snapshot()))
        << label << " threads=" << threads;
    for (std::size_t i = 0; i < y.size(); ++i)
      EXPECT_EQ(y[i], want[i])
          << label << " threads=" << threads << " row " << i;
  }

  // Specialized rung — emitted C through the system toolchain. Skipping
  // silently (rather than GTEST_SKIP) keeps the other rungs' assertions
  // meaningful on toolchain-less machines.
  LinkedPlan lp = link_plan(k.plan(), k.query());
  LinkedMac mac = link_mac(k.query(), target, factors);
  SpecializedKernel spec(lp, mac);
  if (spec.ok()) {
    std::fill(y.begin(), y.end(), 0.0);
    auto hb_s = support::histograms_snapshot();
    auto cb_s = support::counters_snapshot();
    EngineRun sr;
    spec.run(&sr.stats);
    sr.deltas = exec_delta(cb_s, support::counters_snapshot());
    expect_same_work(ref.linked, sr);
    EXPECT_EQ(ref.fanout, fanout_delta(hb_s, support::histograms_snapshot()))
        << label << " specialized";
    for (std::size_t i = 0; i < y.size(); ++i)
      EXPECT_EQ(y[i], want[i]) << label << " specialized row " << i;
  }
  return ref;
}

TEST(BlockedSliced, SellMatchesCsrOnSkewedRowsAcrossAllRungs) {
  // Skewed row lengths: every 8th row is long, the rest short, so C=4
  // chunks mix lengths and SELL must pad heavily. Column step 5 is
  // coprime to cols, so each row's entries are distinct (no duplicate
  // merging changing the lengths).
  const index_t rows = 20, cols = 24;
  SplitMix64 rng(77);
  TripletBuilder tb(rows, cols);
  for (index_t i = 0; i < rows; ++i) {
    const index_t len = (i % 8 == 0) ? 20 : 1 + i % 4;
    for (index_t k = 0; k < len; ++k)
      tb.add(i, (i + k * 5) % cols, rng.next_double(-1, 1));
  }
  Coo coo = std::move(tb).build();

  formats::Csr csr = formats::Csr::from_coo(coo);
  formats::Sell sell = formats::Sell::from_coo(coo, 4, 8);
  ASSERT_GT(sell.stored(), sell.nnz()) << "case must exercise padding";

  Vector x(static_cast<std::size_t>(cols));
  for (auto& v : x) v = rng.next_double(-1, 1);
  Vector y(static_cast<std::size_t>(rows), 0.0);

  Bindings bc;
  bc.bind_csr("A", csr);
  bc.bind_dense_vector("X", ConstVectorView(x));
  bc.bind_dense_vector("Y", VectorView(y));
  RungRef csr_ref = drive_all_rungs(bc, rows, cols, y, nullptr, "csr");

  Bindings bs;
  bs.bind_sell("A", sell);
  bs.bind_dense_vector("X", ConstVectorView(x));
  bs.bind_dense_vector("Y", VectorView(y));
  RungRef sell_ref = drive_all_rungs(bs, rows, cols, y, &csr_ref.y, "sell");

  // Padding never books: SELL's observables equal CRS's exactly.
  EXPECT_EQ(csr_ref.linked.deltas, sell_ref.linked.deltas);
  EXPECT_EQ(csr_ref.fanout, sell_ref.fanout);
  EXPECT_EQ(csr_ref.linked.stats.tuples, sell_ref.linked.stats.tuples);
  ASSERT_EQ(csr_ref.linked.stats.levels.size(),
            sell_ref.linked.stats.levels.size());
  for (std::size_t d = 0; d < csr_ref.linked.stats.levels.size(); ++d) {
    EXPECT_EQ(csr_ref.linked.stats.levels[d].enumerated,
              sell_ref.linked.stats.levels[d].enumerated) << "level " << d;
    EXPECT_EQ(csr_ref.linked.stats.levels[d].produced,
              sell_ref.linked.stats.levels[d].produced) << "level " << d;
  }
}

TEST(BlockedSliced, BcsrMatchesCsrOnBlockDenseAcrossAllRungs) {
  // Block-dense 16x16 with 4x4 blocks: every stored block is full, so
  // BCSR introduces no fill zeros and enumerates the same (j, value)
  // sequence as CSR — the bitwise-equality precondition.
  const index_t n = 16, blk = 4;
  const index_t bpos[][2] = {{0, 0}, {0, 2}, {1, 1}, {1, 3},
                             {2, 0}, {2, 2}, {3, 1}, {3, 3}};
  SplitMix64 rng(91);
  TripletBuilder tb(n, n);
  for (const auto& bp : bpos)
    for (index_t r = 0; r < blk; ++r)
      for (index_t c = 0; c < blk; ++c)
        tb.add(bp[0] * blk + r, bp[1] * blk + c,
               (rng.next_double(0.0, 1.0) + 0.0625) *
                   ((r + c) % 2 ? -1.0 : 1.0));
  Coo coo = std::move(tb).build();

  formats::Csr csr = formats::Csr::from_coo(coo);
  formats::Bsr bsr = formats::Bsr::from_coo(coo, blk);
  ASSERT_EQ(bsr.stored(), csr.nnz()) << "matrix must be block-dense";

  Vector x(static_cast<std::size_t>(n));
  for (auto& v : x) v = rng.next_double(-1, 1);
  Vector y(static_cast<std::size_t>(n), 0.0);

  Bindings bc;
  bc.bind_csr("A", csr);
  bc.bind_dense_vector("X", ConstVectorView(x));
  bc.bind_dense_vector("Y", VectorView(y));
  RungRef csr_ref = drive_all_rungs(bc, n, n, y, nullptr, "csr");

  Bindings bb;
  bb.bind_bsr("A", bsr);
  bb.bind_dense_vector("X", ConstVectorView(x));
  bb.bind_dense_vector("Y", VectorView(y));
  RungRef bsr_ref = drive_all_rungs(bb, n, n, y, &csr_ref.y, "bsr");

  // No fill, so even the work accounting matches scalar CRS.
  EXPECT_EQ(csr_ref.linked.deltas, bsr_ref.linked.deltas);
  EXPECT_EQ(csr_ref.fanout, bsr_ref.fanout);
  EXPECT_EQ(csr_ref.linked.stats.tuples, bsr_ref.linked.stats.tuples);

  // The threaded rung above ran on a block-aligned chunk grid.
  LoopNest nest{{{"i", n}, {"j", n}},
                {{"Y", {"i"}}, {{"A", {"i", "j"}}, {"X", {"j"}}}, 1.0}};
  CompiledKernel k = compile(nest, bb);
  EXPECT_EQ(link_plan(k.plan(), k.query()).chunk_align, blk);
}

// A row-major matvec plan must actually fan out, and the merge-join test
// above (merge at the INNER level) stays legal — only an outer merge is
// disqualifying.
TEST(ParallelExec, CsrMatvecIsParallelLegal) {
  Coo coo = random_matrix(40, 40, 200, 31);
  formats::Csr csr = formats::Csr::from_coo(coo);
  Vector x(40, 1.0), y(40, 0.0);
  Bindings b;
  b.bind_csr("A", csr);
  b.bind_dense_vector("X", ConstVectorView(x));
  b.bind_dense_vector("Y", VectorView(y));
  LoopNest nest{{{"i", 40}, {"j", 40}},
                {{"Y", {"i"}}, {{"A", {"i", "j"}}, {"X", {"j"}}}, 1.0}};
  CompiledKernel k = compile(nest, b);

  LinkedPlan lp = link_plan(k.plan(), k.query());
  EXPECT_TRUE(lp.parallel_ok) << lp.parallel_note;
  ParallelRunner runner(std::move(lp), 4);
  EXPECT_TRUE(runner.parallel());
  EXPECT_EQ(runner.threads(), 4);
  EXPECT_NE(k.explain().find("parallel: outer level i chunked"),
            std::string::npos);
}

// An outer-level merge join cannot be chunked (splitting the k-finger
// sweep would change merge_steps): two sparse filtering drivers on the
// single loop variable force an outer merge, which must fall back.
TEST(ParallelExec, OuterMergeJoinFallsBackToSerial) {
  const index_t n = 50;
  formats::SparseVector x1(
      n, {{2, 1.0}, {7, 2.0}, {19, -1.0}, {23, 0.5}, {41, 3.0}});
  formats::SparseVector x2(n, {{7, 4.0}, {19, 0.25}, {23, -2.0}, {48, 1.0}});
  Vector y(static_cast<std::size_t>(n), 0.0);

  relation::IntervalView iview("I", {n});
  relation::SparseVectorView v1("X1", x1);
  relation::SparseVectorView v2("X2", x2);
  relation::DenseVectorView yview("Y", VectorView(y));

  Query q;
  q.vars = {"i"};
  q.relations.push_back({&iview, {"i"}, true, false, true});
  q.relations.push_back({&v1, {"i"}, true, false, false});
  q.relations.push_back({&v2, {"i"}, true, false, false});
  q.relations.push_back({&yview, {"i"}, false, true, false});
  Plan plan = plan_query(q);
  ASSERT_EQ(plan.levels[0].method, JoinMethod::kMerge);

  LinkedPlan lp = link_plan(plan, q);
  EXPECT_FALSE(lp.parallel_ok);
  EXPECT_NE(lp.parallel_note.find("merge join"), std::string::npos)
      << lp.parallel_note;
  EXPECT_NE(explain(plan, q).find("serial fallback"), std::string::npos);

  // The fallback still runs — and matches the interpreter exactly.
  EngineRun ir =
      run_interpreted(plan, q, multiply_accumulate(q, 3, {1, 2}));
  Vector y_interp = y;
  std::fill(y.begin(), y.end(), 0.0);
  auto before = support::counters_snapshot();
  ParallelRunner runner(link_plan(plan, q), 8);
  EXPECT_FALSE(runner.parallel());
  EngineRun pr;
  runner.run(multiply_accumulate(q, 3, {1, 2}), &pr.stats);
  pr.deltas = exec_delta(before, support::counters_snapshot());
  expect_same_work(ir, pr);
  for (std::size_t i = 0; i < y.size(); ++i) EXPECT_EQ(y[i], y_interp[i]);
}

// Sparse-output fill-in grows shared storage mid-run: the SpGEMM plan
// must refuse to fan out, and the fallback must still insert correctly.
// (The SPA trips the legality scan at its first unsafe access — its row
// level is probed through a stateful virtual search; the insert-on-miss
// rule backs that up one level deeper — so the note names the output.)
TEST(ParallelExec, FillInFallsBackToSerial) {
  Coo a = random_matrix(14, 18, 60, 22);
  Coo bm = random_matrix(18, 11, 55, 23);
  formats::Csr acsr = formats::Csr::from_coo(a);
  formats::Csr bcsr = formats::Csr::from_coo(bm);
  relation::CsrView aview("A", acsr);
  relation::CsrView bview("B", bcsr);
  relation::IntervalView iview("I", {14, 18, 11});
  relation::SpaView cview("C", 14, 11);

  Query q;
  q.vars = {"i", "k", "j"};
  q.relations.push_back({&iview, {"i", "k", "j"}, true, false, true});
  q.relations.push_back({&aview, {"i", "k"}, true, false, false});
  q.relations.push_back({&bview, {"k", "j"}, true, false, false});
  q.relations.push_back({&cview, {"i", "j"}, false, true, false});
  Plan plan = plan_query(q);

  LinkedPlan lp = link_plan(plan, q);
  EXPECT_FALSE(lp.parallel_ok);
  EXPECT_NE(lp.parallel_note.find("C "), std::string::npos)
      << lp.parallel_note;
  EXPECT_NE(explain(plan, q).find("serial fallback"), std::string::npos);

  ParallelRunner runner(std::move(lp), 4);
  EXPECT_FALSE(runner.parallel());
  runner.run(link_mac(q, 3, {1, 2}));
  EXPECT_EQ(cview.harvest(), blas::spgemm(acsr, bcsr).to_coo());
}

// ---- CompiledKernel copy/move keeps the pre-linked program ----------

// Copies and moves used to silently drop the lazily-built linked program
// — the next run() paid a hidden re-link. They now re-establish it
// eagerly, and a moved-from-then-reassigned kernel must behave exactly
// like the original: same output, same executor.* deltas, and no
// observable re-link on first use.
TEST(CompiledKernelCache, CopyAndMoveKeepLinkedProgram) {
  Coo coo = random_matrix(24, 24, 100, 33);
  formats::Csr csr = formats::Csr::from_coo(coo);
  Vector x(24, 1.0), y(24, 0.0);
  Bindings b;
  b.bind_csr("A", csr);
  b.bind_dense_vector("X", ConstVectorView(x));
  b.bind_dense_vector("Y", VectorView(y));
  LoopNest nest{{{"i", 24}, {"j", 24}},
                {{"Y", {"i"}}, {{"A", {"i", "j"}}, {"X", {"j"}}}, 1.0}};
  CompiledKernel k = compile(nest, b);

  // Reference run (also builds the cache the copies must re-establish).
  std::fill(y.begin(), y.end(), 0.0);
  auto before = support::counters_snapshot();
  k.run();
  auto ref_delta = exec_delta(before, support::counters_snapshot());
  Vector y_ref = y;

  auto run_and_compare = [&](const CompiledKernel& kk, const char* label) {
    std::fill(y.begin(), y.end(), 0.0);
    auto b0 = support::counters_snapshot();
    kk.run();
    EXPECT_EQ(exec_delta(b0, support::counters_snapshot()), ref_delta)
        << label;
    for (std::size_t i = 0; i < y.size(); ++i)
      EXPECT_EQ(y[i], y_ref[i]) << label << " row " << i;
  };

  CompiledKernel copied(k);
  run_and_compare(copied, "copy ctor");

  CompiledKernel moved(std::move(copied));
  run_and_compare(moved, "move ctor");

  // Move-assign back into the hollowed-out shell and run again: the
  // reassigned kernel must match the original exactly.
  copied = std::move(moved);
  run_and_compare(copied, "move assign");

  CompiledKernel assigned;
  assigned = copied;
  run_and_compare(assigned, "copy assign");
  run_and_compare(k, "original after all of it");
}

}  // namespace
}  // namespace bernoulli::compiler
