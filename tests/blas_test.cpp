// Sparse BLAS extensions: SpMM, transpose kernels, SpGEMM.
#include <gtest/gtest.h>

#include "blas/spgemm.hpp"
#include "blas/spmm.hpp"
#include "blas/transpose.hpp"
#include "formats/blocksolve.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "workloads/bs_order.hpp"
#include "workloads/grid.hpp"

namespace bernoulli::blas {
namespace {

using formats::Coo;
using formats::Csr;
using formats::Dense;
using formats::TripletBuilder;

Coo random_matrix(index_t rows, index_t cols, index_t nnz, std::uint64_t seed) {
  SplitMix64 rng(seed);
  TripletBuilder b(rows, cols);
  for (index_t k = 0; k < nnz; ++k)
    b.add(rng.next_index(rows), rng.next_index(cols),
          rng.next_double(-1.0, 1.0));
  return std::move(b).build();
}

Dense random_dense(index_t rows, index_t cols, std::uint64_t seed) {
  SplitMix64 rng(seed);
  Dense d(rows, cols);
  for (index_t i = 0; i < rows; ++i)
    for (index_t j = 0; j < cols; ++j) d.at(i, j) = rng.next_double(-1.0, 1.0);
  return d;
}

Dense dense_matmul(const Dense& a, const Dense& b) {
  Dense c(a.rows(), b.cols());
  for (index_t i = 0; i < a.rows(); ++i)
    for (index_t j = 0; j < b.cols(); ++j) {
      value_t sum = 0;
      for (index_t k = 0; k < a.cols(); ++k) sum += a.at(i, k) * b.at(k, j);
      c.at(i, j) = sum;
    }
  return c;
}

TEST(Spmm, MatchesDenseReference) {
  Coo a = random_matrix(25, 30, 180, 1);
  Csr acsr = Csr::from_coo(a);
  Dense ad = Dense::from_coo(a);
  Dense b = random_dense(30, 7, 2);
  Dense c(25, 7), c_ref = dense_matmul(ad, b);
  spmm(acsr, b, c);
  for (index_t i = 0; i < 25; ++i)
    for (index_t j = 0; j < 7; ++j)
      ASSERT_NEAR(c.at(i, j), c_ref.at(i, j), 1e-12);
}

TEST(Spmm, AddAccumulates) {
  Coo a = random_matrix(10, 10, 40, 3);
  Csr acsr = Csr::from_coo(a);
  Dense b = random_dense(10, 3, 4);
  Dense c0 = random_dense(10, 3, 5);
  Dense c = c0;
  Dense ab(10, 3);
  spmm(acsr, b, ab);
  spmm_add(acsr, b, c);
  for (index_t i = 0; i < 10; ++i)
    for (index_t j = 0; j < 3; ++j)
      ASSERT_NEAR(c.at(i, j), c0.at(i, j) + ab.at(i, j), 1e-12);
}

TEST(Spmm, SingleColumnEqualsSpmv) {
  Coo a = random_matrix(20, 20, 80, 6);
  Csr acsr = Csr::from_coo(a);
  Dense b(20, 1);
  Vector x(20);
  SplitMix64 rng(7);
  for (index_t i = 0; i < 20; ++i) {
    x[static_cast<std::size_t>(i)] = rng.next_double(-1, 1);
    b.at(i, 0) = x[static_cast<std::size_t>(i)];
  }
  Dense c(20, 1);
  spmm(acsr, b, c);
  Vector y(20);
  formats::spmv(acsr, x, y);
  for (index_t i = 0; i < 20; ++i)
    ASSERT_NEAR(c.at(i, 0), y[static_cast<std::size_t>(i)], 1e-13);
}

TEST(Spmm, BlockSolveStorageMatchesCsr) {
  auto g = workloads::grid3d_7pt(3, 3, 2, 5, 8);
  auto ord = workloads::blocksolve_ordering(g.matrix, 5);
  auto bs = formats::BsMatrix::build(g.matrix, ord);
  Csr acsr = Csr::from_coo(g.matrix);
  Dense b = random_dense(g.matrix.cols(), 4, 9);
  Dense c1(g.matrix.rows(), 4), c2(g.matrix.rows(), 4);
  spmm(acsr, b, c1);
  spmm(bs, b, c2);
  for (index_t i = 0; i < c1.rows(); ++i)
    for (index_t j = 0; j < 4; ++j)
      ASSERT_NEAR(c1.at(i, j), c2.at(i, j), 1e-10);
}

TEST(Transpose, ExplicitMatchesCooTranspose) {
  Coo a = random_matrix(18, 23, 100, 10);
  Csr at = transpose(Csr::from_coo(a));
  at.validate();
  EXPECT_EQ(at.to_coo(), a.transposed());
}

TEST(Transpose, TwiceIsIdentity) {
  Coo a = random_matrix(15, 9, 50, 11);
  Csr acsr = Csr::from_coo(a);
  EXPECT_EQ(transpose(transpose(acsr)).to_coo(), a);
}

TEST(Transpose, SpmvTransposeMatchesExplicit) {
  Coo a = random_matrix(30, 20, 150, 12);
  Csr acsr = Csr::from_coo(a);
  Csr at = transpose(acsr);
  Vector x(30);
  SplitMix64 rng(13);
  for (auto& v : x) v = rng.next_double(-1, 1);
  Vector y1(20), y2(20);
  spmv_transpose(acsr, x, y1);
  formats::spmv(at, x, y2);
  for (std::size_t i = 0; i < 20; ++i) ASSERT_NEAR(y1[i], y2[i], 1e-12);
}

TEST(Spgemm, MatchesDenseReference) {
  Coo a = random_matrix(12, 17, 70, 14);
  Coo b = random_matrix(17, 9, 60, 15);
  Csr c = spgemm(Csr::from_coo(a), Csr::from_coo(b));
  c.validate();
  Dense ref = dense_matmul(Dense::from_coo(a), Dense::from_coo(b));
  for (index_t i = 0; i < 12; ++i)
    for (index_t j = 0; j < 9; ++j)
      ASSERT_NEAR(c.at(i, j), ref.at(i, j), 1e-12) << i << "," << j;
}

TEST(Spgemm, IdentityIsNeutral) {
  Coo a = random_matrix(10, 10, 40, 16);
  TripletBuilder ib(10, 10);
  for (index_t i = 0; i < 10; ++i) ib.add(i, i, 1.0);
  Csr eye = Csr::from_coo(std::move(ib).build());
  Csr acsr = Csr::from_coo(a);
  EXPECT_EQ(spgemm(acsr, eye).to_coo(), a);
  EXPECT_EQ(spgemm(eye, acsr).to_coo(), a);
}

TEST(Spgemm, StructureIsJoinOfStructures) {
  // (A B)(i,j) is stored iff some k has A(i,k) and B(k,j) stored — even if
  // values cancel; check with a crafted cancellation.
  TripletBuilder ab(2, 2), bb(2, 2);
  ab.add(0, 0, 1.0);
  ab.add(0, 1, 1.0);
  bb.add(0, 0, 1.0);
  bb.add(1, 0, -1.0);
  Csr c = spgemm(Csr::from_coo(std::move(ab).build()),
                 Csr::from_coo(std::move(bb).build()));
  EXPECT_EQ(c.nnz(), 1);            // entry (0,0) exists...
  EXPECT_DOUBLE_EQ(c.at(0, 0), 0.0);  // ...with value exactly 0
}

TEST(Spgemm, RejectsDimensionMismatch) {
  Coo a = random_matrix(3, 4, 5, 17);
  Coo b = random_matrix(5, 3, 5, 18);
  EXPECT_THROW(spgemm(Csr::from_coo(a), Csr::from_coo(b)), bernoulli::Error);
}

}  // namespace
}  // namespace bernoulli::blas
