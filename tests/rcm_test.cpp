// Reverse Cuthill-McKee ordering and its interaction with banded storage.
#include <gtest/gtest.h>

#include "formats/dia.hpp"
#include "formats/dense.hpp"
#include "support/rng.hpp"
#include "workloads/rcm.hpp"
#include "workloads/suite.hpp"

namespace bernoulli::workloads {
namespace {

using formats::Coo;
using formats::TripletBuilder;

TEST(Rcm, IsAPermutation) {
  Coo a = suite_matrix("685_bus").matrix;
  auto order = rcm_ordering(a);
  std::vector<bool> seen(static_cast<std::size_t>(a.rows()), false);
  for (index_t v : order) {
    ASSERT_GE(v, 0);
    ASSERT_LT(v, a.rows());
    ASSERT_FALSE(seen[static_cast<std::size_t>(v)]);
    seen[static_cast<std::size_t>(v)] = true;
  }
}

TEST(Rcm, PermuteSymmetricPreservesValues) {
  SplitMix64 rng(1);
  TripletBuilder b(10, 10);
  for (int k = 0; k < 30; ++k) {
    index_t i = rng.next_index(10), j = rng.next_index(10);
    b.add(i, j, rng.next_double(-1, 1));
  }
  Coo a = std::move(b).build();
  auto order = rcm_ordering(a);
  Coo pa = permute_symmetric(a, order);
  EXPECT_EQ(pa.nnz(), a.nnz());
  formats::Dense d = formats::Dense::from_coo(a);
  for (index_t ip = 0; ip < 10; ++ip)
    for (index_t jp = 0; jp < 10; ++jp)
      EXPECT_DOUBLE_EQ(pa.at(ip, jp),
                       d.at(order[static_cast<std::size_t>(ip)],
                            order[static_cast<std::size_t>(jp)]));
}

// A grid matrix scrambled by a random symmetric permutation: bandwidth
// ~n. RCM's job is to recover a tight band.
formats::Coo scrambled_grid() {
  Coo grid = suite_matrix("gr_30_30").matrix;
  SplitMix64 rng(9);
  std::vector<index_t> shuffle(static_cast<std::size_t>(grid.rows()));
  for (std::size_t i = 0; i < shuffle.size(); ++i)
    shuffle[i] = static_cast<index_t>(i);
  for (std::size_t i = shuffle.size(); i > 1; --i)
    std::swap(shuffle[i - 1], shuffle[rng.next_below(i)]);
  return permute_symmetric(grid, shuffle);
}

TEST(Rcm, RecoversTightBandOnScrambledGrid) {
  Coo a = scrambled_grid();
  index_t before = bandwidth(a);
  EXPECT_GT(before, 700);  // scrambled: bandwidth ~ n
  Coo pa = permute_symmetric(a, rcm_ordering(a));
  index_t after = bandwidth(pa);
  EXPECT_LT(after, before / 8) << "before " << before << " after " << after;
}

TEST(Rcm, ShrinksDiagonalStorage) {
  // The point of pairing RCM with the Diagonal format: the skyline
  // storage collapses once the band is tight.
  Coo a = scrambled_grid();
  formats::Dia before = formats::Dia::from_coo(a);
  Coo pa = permute_symmetric(a, rcm_ordering(a));
  formats::Dia after = formats::Dia::from_coo(pa);
  EXPECT_LT(after.stored(), before.stored() / 4)
      << "before " << before.stored() << " after " << after.stored();
  EXPECT_EQ(after.to_coo().nnz(), a.nnz());
}

TEST(Rcm, HandlesDisconnectedComponents) {
  // Two separate triangles plus an isolated vertex.
  TripletBuilder b(7, 7);
  auto tri = [&](index_t base) {
    for (index_t i = 0; i < 3; ++i)
      for (index_t j = 0; j < 3; ++j)
        if (i != j) b.add(base + i, base + j, 1.0);
  };
  tri(0);
  tri(3);
  b.add(6, 6, 1.0);
  Coo a = std::move(b).build();
  auto order = rcm_ordering(a);
  EXPECT_EQ(order.size(), 7u);
  std::sort(order.begin(), order.end());
  for (index_t i = 0; i < 7; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Rcm, BandwidthHelpers) {
  TripletBuilder b(5, 5);
  b.add(0, 4, 1.0);
  b.add(2, 2, 1.0);
  EXPECT_EQ(bandwidth(std::move(b).build()), 4);
  EXPECT_EQ(bandwidth(Coo(3, 3, {})), 0);
}

}  // namespace
}  // namespace bernoulli::workloads
