// Hash-index access-method adapter: contract, laziness, and planner
// interaction (the "third join implementation").
#include <gtest/gtest.h>

#include "compiler/executor.hpp"
#include "compiler/planner.hpp"
#include "formats/csr.hpp"
#include "relation/array_views.hpp"
#include "relation/hash_index.hpp"
#include "support/rng.hpp"

namespace bernoulli::relation {
namespace {

using formats::Coo;
using formats::Csr;
using formats::TripletBuilder;

Coo sample() {
  TripletBuilder b(5, 6);
  b.add(0, 2, 1.0);
  b.add(0, 5, 2.0);
  b.add(1, 0, 3.0);
  b.add(3, 2, 4.0);
  b.add(3, 3, 5.0);
  b.add(3, 4, 6.0);
  return std::move(b).build();
}

TEST(HashIndex, SearchAgreesWithBase) {
  Csr m = Csr::from_coo(sample());
  CsrView base("A", m);
  HashIndexedView hashed(base, /*indexed_depth=*/1);
  EXPECT_EQ(hashed.level(1).properties().search_cost, SearchCost::kConstant);
  for (index_t i = 0; i < 5; ++i)
    for (index_t j = 0; j < 6; ++j)
      EXPECT_EQ(hashed.level(1).search(i, j), base.level(1).search(i, j))
          << i << "," << j;
}

TEST(HashIndex, EnumerationPassesThrough) {
  Csr m = Csr::from_coo(sample());
  CsrView base("A", m);
  HashIndexedView hashed(base, 1);
  std::vector<index_t> got, want;
  hashed.level(1).enumerate(3, [&](index_t idx, index_t) {
    got.push_back(idx);
    return true;
  });
  base.level(1).enumerate(3, [&](index_t idx, index_t) {
    want.push_back(idx);
    return true;
  });
  EXPECT_EQ(got, want);
}

TEST(HashIndex, TablesBuiltLazilyPerParent) {
  Csr m = Csr::from_coo(sample());
  CsrView base("A", m);
  HashIndexedView hashed(base, 1);
  EXPECT_EQ(hashed.tables_built(), 0u);
  hashed.level(1).search(0, 2);
  EXPECT_EQ(hashed.tables_built(), 1u);
  hashed.level(1).search(0, 3);  // same parent: no new table
  EXPECT_EQ(hashed.tables_built(), 1u);
  hashed.level(1).search(3, 4);
  EXPECT_EQ(hashed.tables_built(), 2u);
}

TEST(HashIndex, ValueAccessUnchanged) {
  Csr m = Csr::from_coo(sample());
  CsrView base("A", m);
  HashIndexedView hashed(base, 1);
  index_t pos = hashed.level(1).search(3, 3);
  ASSERT_GE(pos, 0);
  EXPECT_DOUBLE_EQ(hashed.value_at(pos), 5.0);
  EXPECT_EQ(hashed.value_expr("p"), base.value_expr("p"));
}

TEST(HashIndex, QueryThroughWrapperMatchesBase) {
  // y = A x evaluated with the hashed view must equal the plain result.
  SplitMix64 rng(3);
  TripletBuilder tb(20, 20);
  for (int k = 0; k < 80; ++k)
    tb.add(rng.next_index(20), rng.next_index(20), rng.next_double(-1, 1));
  Coo coo = std::move(tb).build();
  Csr m = Csr::from_coo(coo);

  Vector x(20);
  for (auto& v : x) v = rng.next_double(-1, 1);

  auto run = [&](RelationView& aview) {
    Vector y(20, 0.0);
    IntervalView iview("I", {20, 20});
    DenseVectorView xv("X", ConstVectorView(x));
    DenseVectorView yv("Y", VectorView(y));
    Query q;
    q.vars = {"i", "j"};
    q.relations.push_back({&iview, {"i", "j"}, true, false, true});
    q.relations.push_back({&aview, {"i", "j"}, true, false, false});
    q.relations.push_back({&xv, {"j"}, false, false, false});
    q.relations.push_back({&yv, {"i"}, false, true, false});
    auto plan = compiler::plan_query(q);
    compiler::execute(plan, q, compiler::multiply_accumulate(q, 3, {1, 2}));
    return y;
  };

  CsrView base("A", m);
  HashIndexedView hashed(base, 1);
  Vector y1 = run(base);
  Vector y2 = run(hashed);
  for (std::size_t i = 0; i < 20; ++i) ASSERT_NEAR(y1[i], y2[i], 1e-13);
}

TEST(HashIndex, PlannerSeesCheaperProbe) {
  // The cost model must rank a probe of the hashed level cheaper than the
  // same probe through binary search.
  Csr m = Csr::from_coo(sample());
  CsrView base("A", m);
  HashIndexedView hashed(base, 1);

  Vector x(6, 1.0), y(5, 0.0);
  auto plan_cost = [&](RelationView& aview) {
    IntervalView iview("I", {5, 6});
    DenseVectorView xv("X", ConstVectorView(x));
    DenseVectorView yv("Y", VectorView(y));
    Query q;
    q.vars = {"i", "j"};
    q.relations.push_back({&iview, {"i", "j"}, true, false, true});
    q.relations.push_back({&aview, {"i", "j"}, true, false, false});
    q.relations.push_back({&xv, {"j"}, false, false, false});
    q.relations.push_back({&yv, {"i"}, false, true, false});
    // Force the order where A's column level is probed (j bound by the
    // dense interval, A searched): j outer then i would probe... use
    // explicit order {i, j} but force the interval to drive by disallowing
    // merge; the plan that probes A at j only occurs when A does not
    // drive, so compare costs of the forced same-shaped plans.
    compiler::PlannerOptions opts;
    opts.force_order = std::vector<std::string>{"i", "j"};
    return compiler::plan_query(q, opts).total_cost;
  };
  // Identical plans except A's search cost: hashed must not cost more.
  EXPECT_LE(plan_cost(hashed), plan_cost(base));
}

}  // namespace
}  // namespace bernoulli::relation
