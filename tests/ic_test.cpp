// Incomplete Cholesky + triangular solves + ICCG.
#include <gtest/gtest.h>

#include <cmath>

#include "formats/dense.hpp"
#include "solvers/cg.hpp"
#include "solvers/ic.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "workloads/grid.hpp"

namespace bernoulli::solvers {
namespace {

using formats::Csr;
using formats::TripletBuilder;

Csr lower_tri_example() {
  // L = [2 0 0; 1 3 0; 0 4 5]
  TripletBuilder b(3, 3);
  b.add(0, 0, 2.0);
  b.add(1, 0, 1.0);
  b.add(1, 1, 3.0);
  b.add(2, 1, 4.0);
  b.add(2, 2, 5.0);
  return Csr::from_coo(std::move(b).build());
}

TEST(TriangularSolve, LowerForward) {
  Csr l = lower_tri_example();
  Vector b{2.0, 7.0, 18.0};
  Vector x(3);
  solve_lower(l, b, x);
  EXPECT_DOUBLE_EQ(x[0], 1.0);  // 2x0 = 2
  EXPECT_DOUBLE_EQ(x[1], 2.0);  // 1 + 3x1 = 7
  EXPECT_DOUBLE_EQ(x[2], 2.0);  // 8 + 5x2 = 18
}

TEST(TriangularSolve, LowerTransposeBackward) {
  Csr l = lower_tri_example();
  // Solve L^T x = b; verify by applying L^T.
  Vector b{3.0, -1.0, 10.0};
  Vector x(3);
  solve_lower_transpose(l, b, x);
  // L^T = [2 1 0; 0 3 4; 0 0 5]
  EXPECT_NEAR(2 * x[0] + 1 * x[1], 3.0, 1e-12);
  EXPECT_NEAR(3 * x[1] + 4 * x[2], -1.0, 1e-12);
  EXPECT_NEAR(5 * x[2], 10.0, 1e-12);
}

TEST(TriangularSolve, RoundTrip) {
  Csr l = lower_tri_example();
  SplitMix64 rng(1);
  Vector x_true(3);
  for (auto& v : x_true) v = rng.next_double(-2, 2);
  // b = L (L^T x)
  Vector t(3), b(3);
  // compute L^T x then L ·
  Vector lt_x(3, 0.0);
  lt_x[0] = 2 * x_true[0] + 1 * x_true[1];
  lt_x[1] = 3 * x_true[1] + 4 * x_true[2];
  lt_x[2] = 5 * x_true[2];
  formats::spmv(l, lt_x, b);
  Vector x(3);
  solve_lower(l, b, t);
  solve_lower_transpose(l, t, x);
  for (int i = 0; i < 3; ++i) ASSERT_NEAR(x[static_cast<std::size_t>(i)],
                                          x_true[static_cast<std::size_t>(i)],
                                          1e-12);
}

TEST(TriangularSolve, RejectsMissingDiagonal) {
  TripletBuilder b(2, 2);
  b.add(0, 0, 1.0);
  b.add(1, 0, 1.0);  // no (1,1)
  Csr l = Csr::from_coo(std::move(b).build());
  Vector rhs(2, 1.0), x(2);
  EXPECT_THROW(solve_lower(l, rhs, x), Error);
}

TEST(IncompleteCholesky, ExactOnTridiagonal) {
  // For a tridiagonal SPD matrix IC(0) has no dropped fill: L L^T == A.
  TripletBuilder b(6, 6);
  for (index_t i = 0; i < 6; ++i) {
    b.add(i, i, 4.0);
    if (i > 0) {
      b.add(i, i - 1, -1.0);
      b.add(i - 1, i, -1.0);
    }
  }
  Csr a = Csr::from_coo(std::move(b).build());
  auto ic = IncompleteCholesky::factor(a);

  // Verify L L^T == A entrywise.
  const Csr& l = ic.lower();
  formats::Dense ld = formats::Dense::from_coo(l.to_coo());
  for (index_t i = 0; i < 6; ++i)
    for (index_t j = 0; j < 6; ++j) {
      value_t sum = 0;
      for (index_t k = 0; k < 6; ++k) sum += ld.at(i, k) * ld.at(j, k);
      ASSERT_NEAR(sum, a.at(i, j), 1e-12) << i << "," << j;
    }
}

TEST(IncompleteCholesky, ApplyIsSpdAction) {
  auto g = workloads::grid2d_5pt(6, 6, 1, 2);
  Csr a = Csr::from_coo(g.matrix);
  auto ic = IncompleteCholesky::factor(a);
  const auto n = static_cast<std::size_t>(a.rows());
  SplitMix64 rng(3);
  Vector r(n), z(n);
  for (auto& v : r) v = rng.next_double(-1, 1);
  ic.apply(r, z);
  // z' r = r' M^{-1} r > 0 for SPD M.
  EXPECT_GT(dot(z, r), 0.0);
}

TEST(IncompleteCholesky, RejectsIndefinite) {
  TripletBuilder b(2, 2);
  b.add(0, 0, 1.0);
  b.add(0, 1, 5.0);
  b.add(1, 0, 5.0);
  b.add(1, 1, 1.0);  // indefinite
  EXPECT_THROW(IncompleteCholesky::factor(Csr::from_coo(std::move(b).build())),
               Error);
}

TEST(Iccg, ConvergesFasterThanJacobiCg) {
  auto g = workloads::grid3d_7pt(6, 6, 6, 1, 4);
  Csr a = Csr::from_coo(g.matrix);
  const auto n = static_cast<std::size_t>(a.rows());
  SplitMix64 rng(5);
  Vector x_true(n);
  for (auto& v : x_true) v = rng.next_double(-1, 1);
  Vector b(n);
  formats::spmv(a, x_true, b);

  CgOptions opts;
  opts.max_iterations = 500;
  opts.tolerance = 1e-10;

  Vector x_jac(n, 0.0);
  CgResult jac = cg(a, b, x_jac, opts);
  ASSERT_TRUE(jac.converged);

  auto ic = IncompleteCholesky::factor(a);
  Vector x_ic(n, 0.0);
  CgResult iccg = cg_preconditioned(
      a, b, x_ic, [&](ConstVectorView r, VectorView z) { ic.apply(r, z); },
      opts);
  ASSERT_TRUE(iccg.converged);
  EXPECT_LT(iccg.iterations, jac.iterations);

  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x_ic[i], x_true[i], 1e-6);
}

}  // namespace
}  // namespace bernoulli::solvers
