// Virtual-clock accounting modes: manual compute, explicit charges, solo
// sections — the measurement machinery the calibrated benches rely on.
#include <gtest/gtest.h>

#include "runtime/machine.hpp"

namespace bernoulli::runtime {
namespace {

void burn_cpu(int loops) {
  volatile double sink = 0;
  for (int i = 0; i < loops; ++i) sink = sink + 1.0;
}

TEST(Modes, ManualComputeIgnoresCpuTime) {
  Machine m(1);
  auto reports = m.run([&](Process& p) {
    p.set_manual_compute(true);
    burn_cpu(5000000);  // must NOT appear on the virtual clock
    p.charge_seconds(0.25);
  });
  EXPECT_GE(reports[0].virtual_time, 0.25);
  EXPECT_LT(reports[0].virtual_time, 0.26);
}

TEST(Modes, ManualModeStillChargesMessages) {
  CostModel cm;
  cm.latency_s = 0.125;
  cm.bytes_per_s = 1e12;
  Machine m(2, cm);
  auto reports = m.run([&](Process& p) {
    p.set_manual_compute(true);
    if (p.rank() == 0)
      p.send_value<int>(1, 1, 7);
    else
      (void)p.recv_value<int>(0, 1);
  });
  EXPECT_GE(reports[0].virtual_time, 0.125);   // sender latency
  EXPECT_GE(reports[1].virtual_time, 0.25);    // arrival = send + charge
}

TEST(Modes, TogglingBackResumesCpuAccounting) {
  Machine m(1);
  auto reports = m.run([&](Process& p) {
    p.set_manual_compute(true);
    burn_cpu(3000000);
    p.set_manual_compute(false);
    burn_cpu(3000000);  // counted
  });
  EXPECT_GT(reports[0].virtual_time, 0.0);
}

TEST(Modes, SoloSerializesButKeepsClockSemantics) {
  const int P = 4;
  Machine m(P);
  std::vector<double> vt(P, 0.0);
  m.run([&](Process& p) {
    p.solo([&] { burn_cpu(2000000); });
    vt[static_cast<std::size_t>(p.rank())] = p.virtual_time();
  });
  // Every rank's clock reflects roughly its own solo work — similar across
  // ranks, all positive, none wildly larger (waiting for the lock is off
  // the clock).
  double mn = 1e30, mx = 0;
  for (double v : vt) {
    EXPECT_GT(v, 0.0);
    mn = std::min(mn, v);
    mx = std::max(mx, v);
  }
  EXPECT_LT(mx, 50 * mn) << "lock waiting leaked into a virtual clock";
}

TEST(Modes, ChargeSecondsRejectsNegative) {
  Machine m(1);
  EXPECT_THROW(m.run([&](Process& p) { p.charge_seconds(-1.0); }), Error);
}

TEST(Modes, CommOperationsOwnCpuIsDiscarded) {
  // A rank that only sends/receives large buffers accrues (almost) no
  // compute time beyond the modeled charges.
  CostModel cm;
  cm.latency_s = 0.0;
  cm.bytes_per_s = 1e15;  // negligible transfer charge
  Machine m(2, cm);
  auto reports = m.run([&](Process& p) {
    std::vector<double> payload(1 << 16, 1.0);
    for (int k = 0; k < 20; ++k) {
      if (p.rank() == 0) {
        p.send<double>(1, k, payload);
      } else {
        (void)p.recv<double>(0, k);
      }
    }
  });
  // Copying 20 x 512KiB through mailboxes costs real CPU; virtually it
  // must be (near) free.
  EXPECT_LT(reports[0].virtual_time, 0.05);
  EXPECT_LT(reports[1].virtual_time, 0.05);
}

}  // namespace
}  // namespace bernoulli::runtime
