// Distributed transpose product: the reverse (scatter-add) communication
// pattern over the forward schedule.
#include <gtest/gtest.h>

#include "blas/transpose.hpp"
#include "distrib/distribution.hpp"
#include "spmd/spmm.hpp"
#include "support/rng.hpp"
#include "workloads/grid.hpp"

namespace bernoulli::spmd {
namespace {

using distrib::BlockDist;
using distrib::CyclicDist;
using formats::Csr;

void check_transpose(const Csr& a, const distrib::Distribution& rows, int P) {
  const index_t n = a.rows();
  SplitMix64 rng(7);
  Vector x(static_cast<std::size_t>(n));
  for (auto& v : x) v = rng.next_double(-1, 1);
  Vector y_ref(static_cast<std::size_t>(n));
  blas::spmv_transpose(a, x, y_ref);

  Vector y(static_cast<std::size_t>(n), 0.0);
  std::mutex mu;
  runtime::Machine machine(P);
  machine.run([&](runtime::Process& p) {
    DistSpmv dist = build_dist_spmv(p, a, rows, Variant::kBernoulliMixed);
    auto mine = rows.owned_indices(p.rank());
    Vector xl(mine.size());
    for (std::size_t k = 0; k < mine.size(); ++k)
      xl[k] = x[static_cast<std::size_t>(mine[k])];
    Vector scratch(static_cast<std::size_t>(dist.sched.full_size()));
    dist_spmv_transpose(p, dist, xl, scratch, /*tag=*/6);
    std::lock_guard<std::mutex> lk(mu);
    // The owned slice of A^T x lands in the first owned entries.
    for (std::size_t k = 0; k < mine.size(); ++k)
      y[static_cast<std::size_t>(mine[k])] = scratch[k];
  });
  for (std::size_t i = 0; i < y.size(); ++i)
    ASSERT_NEAR(y[i], y_ref[i], 1e-11) << "row " << i;
}

TEST(DistTranspose, BlockDistMatchesSequential) {
  // The forward schedule's ghost set is exactly the set of non-owned
  // columns this rank's rows reference — which is exactly where its
  // transpose contributions land, so the reverse exchange covers ANY
  // structure.
  auto g = workloads::grid3d_7pt(4, 4, 3, 2, 91);
  check_transpose(Csr::from_coo(g.matrix), BlockDist(g.matrix.rows(), 4), 4);
}

TEST(DistTranspose, CyclicDistMatchesSequential) {
  auto g = workloads::grid2d_5pt(9, 6, 1, 92);
  check_transpose(Csr::from_coo(g.matrix), CyclicDist(g.matrix.rows(), 3), 3);
}

TEST(DistTranspose, UnsymmetricValues) {
  // Neither values nor structure symmetry is required; perturb a grid
  // matrix's values asymmetrically.
  auto g = workloads::grid2d_5pt(6, 6, 1, 93);
  formats::TripletBuilder b(g.matrix.rows(), g.matrix.cols());
  auto rowind = g.matrix.rowind();
  auto colind = g.matrix.colind();
  auto vals = g.matrix.vals();
  for (index_t k = 0; k < g.matrix.nnz(); ++k)
    b.add(rowind[k], colind[k],
          vals[k] * (1.0 + 0.1 * static_cast<double>(rowind[k] % 7)));
  Csr a = Csr::from_coo(std::move(b).build());
  check_transpose(a, BlockDist(a.rows(), 3), 3);
}

TEST(DistTranspose, RejectsNaiveVariant) {
  auto g = workloads::grid2d_5pt(4, 4, 1, 94);
  Csr a = Csr::from_coo(g.matrix);
  BlockDist rows(a.rows(), 2);
  runtime::Machine machine(2);
  EXPECT_THROW(machine.run([&](runtime::Process& p) {
                 DistSpmv dist =
                     build_dist_spmv(p, a, rows, Variant::kBernoulli);
                 Vector xl(static_cast<std::size_t>(dist.local_rows()), 1.0);
                 Vector scratch(static_cast<std::size_t>(dist.sched.full_size()));
                 dist_spmv_transpose(p, dist, xl, scratch, 1);
               }),
               Error);
}

}  // namespace
}  // namespace bernoulli::spmd
