// Declarative format specifications: a user teaches the compiler a new
// format with a textual spec over raw arrays, and the ordinary pipeline
// plans/runs/emits against it.
#include <gtest/gtest.h>

#include "compiler/loopnest.hpp"
#include "formats/bsr.hpp"
#include "formats/csr.hpp"
#include "formats/sell.hpp"
#include "relation/array_views.hpp"
#include "relation/format_spec.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace bernoulli::relation {
namespace {

using formats::Coo;
using formats::Csr;
using formats::TripletBuilder;

Coo sample(index_t n, index_t nnz, std::uint64_t seed) {
  SplitMix64 rng(seed);
  TripletBuilder b(n, n);
  for (index_t k = 0; k < nnz; ++k)
    b.add(rng.next_index(n), rng.next_index(n), rng.next_double(-1, 1));
  return std::move(b).build();
}

// Loads a CSR matrix's raw arrays into a FormatArrays bundle.
FormatArrays csr_arrays(const Csr& m) {
  FormatArrays arrays;
  arrays.index_arrays["ROWPTR"] = {m.rowptr().begin(), m.rowptr().end()};
  arrays.index_arrays["COLIND"] = {m.colind().begin(), m.colind().end()};
  arrays.value_arrays["VALS"] = {m.vals().begin(), m.vals().end()};
  return arrays;
}

std::string csr_spec(index_t rows) {
  return "format A {\n"
         "  level i: dense(" + std::to_string(rows) + ");\n"
         "  level j: compressed(ptr=ROWPTR, ind=COLIND) sorted;\n"
         "  value VALS;\n"
         "}\n";
}

TEST(FormatSpec, ParsesCsrAndMatchesBuiltinView) {
  Coo coo = sample(12, 50, 1);
  Csr m = Csr::from_coo(coo);
  FormatArrays arrays = csr_arrays(m);
  GenericFormatView v(csr_spec(12), arrays);

  EXPECT_EQ(v.name(), "A");
  EXPECT_EQ(v.arity(), 2);
  EXPECT_EQ(v.level_vars(), (std::vector<std::string>{"i", "j"}));
  EXPECT_TRUE(v.level(0).properties().dense);
  EXPECT_TRUE(v.level(1).properties().sorted);
  EXPECT_EQ(v.level(1).properties().search_cost, SearchCost::kLog);

  CsrView builtin("A", m);
  for (index_t i = 0; i < 12; ++i)
    for (index_t j = 0; j < 12; ++j)
      EXPECT_EQ(v.level(1).search(i, j), builtin.level(1).search(i, j));
}

TEST(FormatSpec, CompilesThroughThePipeline) {
  const index_t n = 16;
  Coo coo = sample(n, 70, 2);
  Csr m = Csr::from_coo(coo);
  FormatArrays arrays = csr_arrays(m);
  GenericFormatView aview(csr_spec(n), arrays);

  SplitMix64 rng(3);
  Vector x(static_cast<std::size_t>(n));
  for (auto& v : x) v = rng.next_double(-1, 1);
  Vector y(static_cast<std::size_t>(n), 0.0), y_ref(y.size());
  formats::spmv(m, x, y_ref);

  compiler::Bindings b;
  b.bind_view("A", &aview, {0, 1}, /*sparse=*/true);
  b.bind_dense_vector("X", ConstVectorView(x));
  b.bind_dense_vector("Y", VectorView(y));
  compiler::LoopNest nest{{{"i", n}, {"j", n}},
                          {{"Y", {"i"}}, {{"A", {"i", "j"}}, {"X", {"j"}}},
                           1.0}};
  compiler::CompiledKernel k = compiler::compile(nest, b);
  k.run();
  for (std::size_t i = 0; i < y.size(); ++i) ASSERT_NEAR(y[i], y_ref[i], 1e-12);
  // Emission names the user's arrays.
  std::string code = k.emit();
  EXPECT_NE(code.find("ROWPTR"), std::string::npos);
  EXPECT_NE(code.find("VALS["), std::string::npos);
}

TEST(FormatSpec, UnsortedLevelGetsLinearSearch) {
  Coo coo = sample(8, 20, 4);
  Csr m = Csr::from_coo(coo);
  FormatArrays arrays = csr_arrays(m);
  GenericFormatView v(
      "format B { level i: dense(8); "
      "level j: compressed(ptr=ROWPTR, ind=COLIND) unsorted; value VALS; }",
      arrays);
  EXPECT_FALSE(v.level(1).properties().sorted);
  EXPECT_EQ(v.level(1).properties().search_cost, SearchCost::kLinear);
  // Search must still be correct.
  CsrView builtin("B", m);
  for (index_t i = 0; i < 8; ++i)
    for (index_t j = 0; j < 8; ++j)
      EXPECT_EQ(v.level(1).search(i, j), builtin.level(1).search(i, j));
}

TEST(FormatSpec, ListAndFunctionLevels) {
  FormatArrays arrays;
  arrays.index_arrays["IND"] = {2, 5, 9};
  arrays.index_arrays["MAP"] = {1, 0, 2};
  GenericFormatView list_view(
      "format L { level i: list(ind=IND) sorted; }", arrays);
  EXPECT_EQ(list_view.level(0).search(0, 5), 1);
  EXPECT_EQ(list_view.level(0).search(0, 4), -1);
  EXPECT_FALSE(list_view.has_value());

  GenericFormatView fn_view(
      "format P { level i: dense(3); level ip: function(map=MAP); }", arrays);
  EXPECT_EQ(fn_view.level(1).search(0, 1), 0);
  EXPECT_EQ(fn_view.level(1).search(0, 0), -1);
}

TEST(FormatSpec, ParsesBlockedLevelAndSearchesThroughBlocks) {
  // 8x8 with full 4x4 blocks at block (0,0) and (1,1): every in-block
  // probe must land on the block-row-major value slot, every out-of-block
  // probe must miss.
  TripletBuilder tb(8, 8);
  for (index_t r = 0; r < 4; ++r)
    for (index_t c = 0; c < 4; ++c) {
      tb.add(r, c, 1.0 + r * 4 + c);
      tb.add(4 + r, 4 + c, -(1.0 + r * 4 + c));
    }
  Coo coo = std::move(tb).build();
  formats::Bsr m = formats::Bsr::from_coo(coo, 4);

  FormatArrays arrays;
  arrays.index_arrays["BROWPTR"] = {m.browptr().begin(), m.browptr().end()};
  arrays.index_arrays["BCOLIND"] = {m.bcolind().begin(), m.bcolind().end()};
  arrays.value_arrays["BVALS"] = {m.vals().begin(), m.vals().end()};
  GenericFormatView v(
      "format A { level i: dense(8); "
      "level j: blocked(r=4, c=4, ptr=BROWPTR, ind=BCOLIND) sorted; "
      "value BVALS; }",
      arrays);

  EXPECT_EQ(v.arity(), 2);
  EXPECT_EQ(descriptor_text(v.level(1).describe()), "blocked 4x4");
  for (index_t i = 0; i < 8; ++i)
    for (index_t j = 0; j < 8; ++j) {
      const index_t pos = v.level(1).search(i, j);
      if ((i < 4) == (j < 4)) {
        ASSERT_GE(pos, 0) << i << "," << j;
        EXPECT_EQ(m.vals()[static_cast<std::size_t>(pos)], m.at(i, j))
            << i << "," << j;
      } else {
        EXPECT_EQ(pos, -1) << i << "," << j;
      }
    }
}

TEST(FormatSpec, ParsesSlicedLevelAndMatchesCsrSearch) {
  Coo coo = sample(10, 30, 5);
  formats::Sell m = formats::Sell::from_coo(coo, 4, 8);
  formats::Csr csr = formats::Csr::from_coo(coo);

  FormatArrays arrays;
  arrays.index_arrays["ROWBASE"] = {m.rowbase().begin(), m.rowbase().end()};
  arrays.index_arrays["ROWLEN"] = {m.rowlen().begin(), m.rowlen().end()};
  arrays.index_arrays["SIND"] = {m.colind().begin(), m.colind().end()};
  arrays.value_arrays["SVALS"] = {m.vals().begin(), m.vals().end()};
  GenericFormatView v(
      "format S { level i: dense(10); "
      "level j: sliced(chunk=4, sigma=8, base=ROWBASE, len=ROWLEN, ind=SIND) "
      "sorted; value SVALS; }",
      arrays);

  EXPECT_EQ(descriptor_text(v.level(1).describe()), "sliced C=4 sigma=8");
  // Same hits and misses as CSR, with the hit's lane slot holding the
  // same value — padding lanes are unreachable through search.
  CsrView builtin("S", csr);
  for (index_t i = 0; i < 10; ++i)
    for (index_t j = 0; j < 10; ++j) {
      const index_t pos = v.level(1).search(i, j);
      const index_t ref = builtin.level(1).search(i, j);
      if (ref < 0) {
        EXPECT_EQ(pos, -1) << i << "," << j;
      } else {
        ASSERT_GE(pos, 0) << i << "," << j;
        EXPECT_EQ(m.vals()[static_cast<std::size_t>(pos)],
                  csr.vals()[static_cast<std::size_t>(ref)])
            << i << "," << j;
      }
    }
}

TEST(FormatSpec, BlockedAndSlicedErrorsAreAnchored) {
  FormatArrays arrays;
  arrays.index_arrays["PTR"] = {0, 1};
  arrays.index_arrays["IND"] = {0};
  arrays.index_arrays["BASE"] = {0, 1};
  arrays.index_arrays["LEN"] = {1, 1};
  arrays.index_arrays["LEN3"] = {1, 1, 1};

  auto expect_error = [&](const std::string& spec, const char* line,
                          const char* needle) {
    try {
      GenericFormatView v(spec, arrays);
      FAIL() << "expected throw mentioning: " << needle;
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find(line), std::string::npos)
          << e.what();
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << e.what();
    }
  };

  // Zero/negative block dims, anchored to the offending line.
  expect_error(
      "format X {\n  level i: dense(4);\n"
      "  level j: blocked(r=0, c=4, ptr=PTR, ind=IND);\n}",
      "line 3", "positive block dims");
  // Block tiling must cover the dense parent exactly.
  expect_error(
      "format X {\n  level i: dense(5);\n"
      "  level j: blocked(r=4, c=4, ptr=PTR, ind=IND);\n}",
      "line 3", "covers 4 rows but parent level is dense(5)");
  // Unknown array names are echoed back.
  expect_error(
      "format X {\n  level i: dense(4);\n"
      "  level j: blocked(r=4, c=4, ptr=NOPE, ind=IND);\n}",
      "line 3", "NOPE");
  // chunk must be positive.
  expect_error(
      "format X {\n  level i: dense(2);\n"
      "  level j: sliced(chunk=0, sigma=8, base=BASE, len=LEN, ind=IND);\n}",
      "line 3", "positive chunk");
  // sigma must tile into whole chunks.
  expect_error(
      "format X {\n  level i: dense(2);\n"
      "  level j: sliced(chunk=4, sigma=6, base=BASE, len=LEN, ind=IND);\n}",
      "line 3", "sigma must be a positive multiple of chunk, got sigma=6");
  // base and len must agree on the row count.
  expect_error(
      "format X {\n  level i: dense(2);\n"
      "  level j: sliced(chunk=4, sigma=8, base=BASE, len=LEN3, ind=IND);\n}",
      "line 3", "base and len must have one entry per row");
}

TEST(FormatSpec, ErrorsAreAnchored) {
  FormatArrays arrays;
  try {
    GenericFormatView v("format X {\n  level i: compressed(ptr=NOPE, ind=Q);\n}",
                        arrays);
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("NOPE"), std::string::npos);
  }
  EXPECT_THROW(GenericFormatView("format Y { }", arrays), Error);
  EXPECT_THROW(GenericFormatView("format Z { level i: bogus(3); }", arrays),
               Error);
  EXPECT_THROW(GenericFormatView("format W { level i: dense(x); }", arrays),
               Error);
}

}  // namespace
}  // namespace bernoulli::relation
