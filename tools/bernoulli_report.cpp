// bernoulli_report: render, diff, and trend bernoulli.run.v1 run reports.
//
// Usage:
//   bernoulli_report <report.json>
//       Render the report (config, metrics, model checks, comm checks,
//       solves, roofline, critical path) as text.
//   bernoulli_report --diff <base.json> <new.json>
//                    [--tol=X | --tolerance=X] [--metrics=<substr>]
//       Compare the flat metrics of two reports. Either side may also be a
//       bernoulli.bench.exec.v1 snapshot (BENCH_exec.json); its cases are
//       mapped onto the same exec.* metric names the benches emit with
//       --report.
//   bernoulli_report append <ledger.jsonl> <report.json>
//       Validate the report and append it to the ledger as one JSONL line.
//   bernoulli_report trend <ledger.jsonl> <metric-substr>
//       Print the trajectory of every matching metric across the ledger,
//       oldest to newest, with the first-to-last relative change.
//   bernoulli_report regress <ledger.jsonl> <baseline.json>
//                    [--tol=X | --tolerance=X] [--metrics=<substr>]
//       Diff the NEWEST ledger entry against the committed baseline — the
//       CI perf gate. Same semantics as --diff. When the gate trips and
//       both sides embed a per-level profile, the top-3 profile.level.*
//       deltas are printed next to the failure so the regression comes
//       with an attribution, not just a metric name.
//   bernoulli_report profile <report.json>
//       Render the report's per-level time-attribution table
//       (profile_registry, schema bernoulli.profile.v1).
//   bernoulli_report profile <base.json> <new.json>
//       Top time movements between two profiled reports (next - base).
//
// Exit codes (all modes):
//   0  success; for --diff/regress, no metric worsened beyond tolerance
//   1  regression detected, zero common metrics, or an input failed to
//      read/parse (a broken gate must fail loudly, not skip)
//   2  usage error (unknown flag, wrong arity, bad tolerance)
//
// This is the perf-gate half of the observability loop: CI appends the
// fresh smoke-run report to a ledger artifact and regresses it against the
// committed trajectory in BENCH_exec.json.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/attribution.hpp"
#include "analysis/report.hpp"
#include "support/json_reader.hpp"

namespace {

int usage() {
  std::cerr
      << "usage: bernoulli_report <report.json>\n"
         "       bernoulli_report --diff <base.json> <new.json>"
         " [--tol=X] [--metrics=<substr>]\n"
         "       bernoulli_report append <ledger.jsonl> <report.json>\n"
         "       bernoulli_report trend <ledger.jsonl> <metric-substr>\n"
         "       bernoulli_report regress <ledger.jsonl> <baseline.json>"
         " [--tol=X] [--metrics=<substr>]\n"
         "       bernoulli_report profile <report.json> [<new.json>]\n"
         "exit codes: 0 ok; 1 regression / no common metrics / read or\n"
         "parse failure; 2 usage error. --tolerance=X is an alias for\n"
         "--tol=X (relative, default 0.25).\n";
  return 2;
}

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

bool parse_doc(const std::string& path, bernoulli::support::JsonValue* out) {
  std::string text;
  if (!read_file(path, &text)) {
    std::cerr << "bernoulli_report: cannot read " << path << "\n";
    return false;
  }
  try {
    *out = bernoulli::support::json_parse(text);
  } catch (const std::exception& e) {
    std::cerr << "bernoulli_report: " << path << ": " << e.what() << "\n";
    return false;
  }
  return true;
}

/// The profile_registry block of a report document, or null when the
/// document has none (e.g. a bernoulli.bench.exec.v1 snapshot) or the run
/// never enabled profiling.
const bernoulli::support::JsonValue* profile_block(
    const bernoulli::support::JsonValue& doc) {
  const bernoulli::support::JsonValue* prof = doc.find("profile_registry");
  if (!prof || !bernoulli::analysis::profile_block_nonempty(*prof))
    return nullptr;
  return prof;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bernoulli;

  std::string mode = "render";
  double tolerance = 0.25;
  std::string metric_filter;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--diff") {
      mode = "diff";
    } else if (i == 1 && (arg == "append" || arg == "trend" ||
                          arg == "regress" || arg == "profile")) {
      mode = arg;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (arg.rfind("--tolerance=", 0) == 0 ||
               arg.rfind("--tol=", 0) == 0) {
      const std::string v = arg.substr(arg.find('=') + 1);
      try {
        tolerance = std::stod(v);
      } catch (const std::exception&) {
        std::cerr << "bernoulli_report: bad tolerance '" << arg << "'\n";
        return 2;
      }
    } else if (arg.rfind("--metrics=", 0) == 0) {
      metric_filter = arg.substr(10);
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "bernoulli_report: unknown flag '" << arg << "'\n";
      return usage();
    } else {
      paths.push_back(arg);
    }
  }
  if (mode == "profile") {
    if (paths.size() != 1 && paths.size() != 2) return usage();
  } else {
    const std::size_t want = mode == "render" ? 1 : 2;
    if (paths.size() != want) return usage();
  }

  try {
    if (mode == "render") {
      support::JsonValue doc;
      if (!parse_doc(paths[0], &doc)) return 1;
      std::cout << analysis::report_text(doc);
      return 0;
    }
    if (mode == "diff") {
      support::JsonValue base, current;
      if (!parse_doc(paths[0], &base) || !parse_doc(paths[1], &current))
        return 1;
      analysis::DiffResult d =
          analysis::diff_reports(base, current, tolerance, metric_filter);
      std::cout << analysis::diff_text(d, tolerance);
      return d.ok() ? 0 : 1;
    }
    if (mode == "append") {
      std::string report_json;
      if (!read_file(paths[1], &report_json)) {
        std::cerr << "bernoulli_report: cannot read " << paths[1] << "\n";
        return 1;
      }
      analysis::ledger_append(paths[0], report_json);
      std::cerr << "appended " << paths[1] << " to " << paths[0] << "\n";
      return 0;
    }
    if (mode == "profile") {
      support::JsonValue doc;
      if (!parse_doc(paths[0], &doc)) return 1;
      const support::JsonValue* prof = profile_block(doc);
      if (!prof) {
        std::cerr << "bernoulli_report: " << paths[0]
                  << " embeds no per-level profile (run the bench with "
                     "--profile=<file> to record one)\n";
        return 1;
      }
      if (paths.size() == 1) {
        std::cout << analysis::profile_table_text(*prof);
        return 0;
      }
      support::JsonValue next_doc;
      if (!parse_doc(paths[1], &next_doc)) return 1;
      const support::JsonValue* next = profile_block(next_doc);
      if (!next) {
        std::cerr << "bernoulli_report: " << paths[1]
                  << " embeds no per-level profile\n";
        return 1;
      }
      const std::string moved =
          analysis::profile_diff_text(*prof, *next, /*top_n=*/10);
      std::cout << (moved.empty() ? "profile: no time moved\n" : moved);
      return 0;
    }
    if (mode == "trend") {
      std::cout << analysis::ledger_trend_text(analysis::ledger_read(paths[0]),
                                               paths[1]);
      return 0;
    }
    // regress: newest ledger entry vs the committed baseline.
    const std::vector<support::JsonValue> entries =
        analysis::ledger_read(paths[0]);
    if (entries.empty()) {
      std::cerr << "bernoulli_report: ledger " << paths[0]
                << " has no entries\n";
      return 1;
    }
    support::JsonValue base;
    if (!parse_doc(paths[1], &base)) return 1;
    analysis::DiffResult d = analysis::diff_reports(
        base, entries.back(), tolerance, metric_filter);
    std::cout << analysis::diff_text(d, tolerance, /*only_changed=*/true);
    if (!d.ok()) {
      std::cerr << "bernoulli_report: REGRESSION — newest ledger entry "
                   "worsens vs "
                << paths[1] << " beyond tol=" << tolerance << "\n";
      // Attribution: point at the levels whose self-time moved the most
      // between the two newest PROFILED ledger entries. The committed
      // baseline (BENCH_exec.json) carries no profile, and older ledger
      // entries may predate the profiler — fall back gracefully.
      const support::JsonValue* next = profile_block(entries.back());
      const support::JsonValue* prev = nullptr;
      for (std::size_t i = entries.size() - 1; i-- > 0 && !prev;)
        prev = profile_block(entries[i]);
      if (!prev) prev = profile_block(base);
      if (next && prev) {
        const std::string moved =
            analysis::profile_diff_text(*prev, *next, /*top_n=*/3);
        if (!moved.empty())
          std::cerr << "top per-level time movements (vs previous profiled "
                       "entry):\n"
                    << moved;
      } else {
        std::cerr << "(no per-level attribution: "
                  << (next ? "no earlier profiled ledger entry or baseline"
                           : "newest entry carries no profile")
                  << " — run the bench with --profile to record one)\n";
      }
    }
    return d.ok() ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "bernoulli_report: " << e.what() << "\n";
    return 1;
  }
}
