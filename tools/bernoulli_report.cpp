// bernoulli_report: render and diff bernoulli.run.v1 run reports.
//
// Usage:
//   bernoulli_report <report.json>
//       Render the report (config, metrics, model checks, comm checks,
//       solves, critical path) as text.
//   bernoulli_report --diff <base.json> <new.json>
//                    [--tolerance=X] [--metrics=<substr>]
//       Compare the flat metrics of two reports. Either side may also be a
//       bernoulli.bench.exec.v1 snapshot (BENCH_exec.json); its cases are
//       mapped onto the same exec.* metric names the benches emit with
//       --report. Exits 1 when any metric worsens by more than the
//       relative tolerance (default 0.25), when the reports share no
//       metrics, or when an input fails to parse; 2 on usage errors.
//
// This is the perf-gate half of the observability loop: CI runs a fresh
// --report bench and diffs it against the committed trajectory.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/report.hpp"
#include "support/json_reader.hpp"

namespace {

int usage() {
  std::cerr
      << "usage: bernoulli_report <report.json>\n"
         "       bernoulli_report --diff <base.json> <new.json>"
         " [--tolerance=X] [--metrics=<substr>]\n";
  return 2;
}

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bernoulli;

  bool diff = false;
  double tolerance = 0.25;
  std::string metric_filter;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--diff") {
      diff = true;
    } else if (arg.rfind("--tolerance=", 0) == 0) {
      try {
        tolerance = std::stod(arg.substr(12));
      } catch (const std::exception&) {
        std::cerr << "bernoulli_report: bad tolerance '" << arg << "'\n";
        return 2;
      }
    } else if (arg.rfind("--metrics=", 0) == 0) {
      metric_filter = arg.substr(10);
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "bernoulli_report: unknown flag '" << arg << "'\n";
      return usage();
    } else {
      paths.push_back(arg);
    }
  }
  if (diff ? paths.size() != 2 : paths.size() != 1) return usage();

  std::vector<support::JsonValue> docs;
  for (const std::string& path : paths) {
    std::string text;
    if (!read_file(path, &text)) {
      std::cerr << "bernoulli_report: cannot read " << path << "\n";
      return 1;
    }
    try {
      docs.push_back(support::json_parse(text));
    } catch (const std::exception& e) {
      std::cerr << "bernoulli_report: " << path << ": " << e.what() << "\n";
      return 1;
    }
  }

  try {
    if (!diff) {
      std::cout << analysis::report_text(docs[0]);
      return 0;
    }
    analysis::DiffResult d =
        analysis::diff_reports(docs[0], docs[1], tolerance, metric_filter);
    std::cout << analysis::diff_text(d, tolerance);
    return d.ok() ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "bernoulli_report: " << e.what() << "\n";
    return 1;
  }
}
